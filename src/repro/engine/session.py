"""Session: the SparkSQL-like entry point.

A :class:`Session` owns a catalog and compiles SQL text through
parse → logical plan → physical plan → execution, timing each stage into a
:class:`~repro.engine.metrics.QueryMetrics`.

Extension point: *physical plan modifiers*. Maxson registers one
(:class:`repro.core.maxson_parser.MaxsonPlanModifier`) which rewrites the
plan between compilation and execution — exactly where the paper's
MaxsonParser sits relative to SparkSQL. The baseline engine runs with no
modifiers installed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..jsonlib.doccache import DEFAULT_DOC_CACHE_BYTES
from ..jsonlib.jackson import JacksonParser
from ..storage.fs import BlockFileSystem
from .cachebudget import CacheLedger
from .cancel import CancelToken
from .catalog import Catalog
from .errors import QueryCancelledError
from .expressions import EvalContext
from .metrics import QueryMetrics
from .parallel import parallelize_plan
from .physical import ExecState, PhysicalPlan
from .plancache import CachedPlan, PlanCache, fingerprint
from .planner import PlannedQuery, Planner
from .resultcache import ResultCache
from .sqlparser import parse_sql

__all__ = ["QueryResult", "Session"]


@dataclass
class QueryResult:
    """Rows plus the metrics of the execution that produced them."""

    rows: list[dict]
    metrics: QueryMetrics
    plan: PhysicalPlan
    #: Root :class:`repro.obs.trace.Span` when the query ran with a
    #: tracer; None on the (default) untraced path.
    trace: object | None = None
    #: ``(database, table, column, path)`` tuples the planner found, so
    #: callers (e.g. the Maxson stats collector) need not re-compile the
    #: SQL — re-compiling would defeat the plan cache.
    referenced_json_paths: list[tuple[str, str, str, str]] = field(
        default_factory=list
    )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list[object]:
        """One output column as a list."""
        return [row[name] for row in self.rows]

    def first(self) -> dict | None:
        return self.rows[0] if self.rows else None


@dataclass
class Session:
    """A single-tenant query session over a shared file system + catalog."""

    fs: BlockFileSystem = field(default_factory=BlockFileSystem)
    catalog: Catalog = None  # type: ignore[assignment]
    parser_factory: object = JacksonParser
    projection_parser_factory: object = None
    #: "batch" (vectorized, parse-once sharing — the default) or "row"
    #: (the per-row tree-walking interpreter). Any query can also be
    #: forced down either path per call: ``session.sql(q, execution_mode=...)``.
    execution_mode: str = "batch"
    #: Split-level parallelism for morsel scans. 1 runs every morsel
    #: inline on the coordinator thread (the deterministic baseline);
    #: higher values overlap per-split I/O on a shared worker pool.
    scan_workers: int = 1
    #: "thread" (GIL-shared ThreadPoolExecutor — the default) or
    #: "process" (spawned worker processes with warm catalog snapshots,
    #: exchanging ColumnBatch payloads over shared memory). Ignored at
    #: ``scan_workers == 1``, which always runs inline.
    worker_backend: str = "thread"
    #: Capacity of the recurring-query plan cache; 0 disables it.
    plan_cache_entries: int = 64
    #: Enables the semantic result cache (final + intermediate result
    #: reuse across canonically-equivalent recurrences).
    result_cache_enabled: bool = False
    #: Entry-count cap of the result cache.
    result_cache_entries: int = 256
    #: Unified byte budget shared by the result, plan and document cache
    #: tiers (see :mod:`repro.engine.cachebudget`). ``None`` = unbudgeted.
    cache_budget_bytes: int | None = None
    #: Optional callable ``(event: str, **fields)`` receiving morsel
    #: worker lifecycle events (process backend spawn/crash/exit); the
    #: server points this at the telemetry store's ``system.workers``.
    worker_observer: object | None = None

    def __post_init__(self) -> None:
        if self.execution_mode not in ("batch", "row"):
            raise ValueError(
                f"execution_mode must be 'batch' or 'row', "
                f"got {self.execution_mode!r}"
            )
        if self.scan_workers < 1:
            raise ValueError(
                f"scan_workers must be >= 1, got {self.scan_workers!r}"
            )
        if self.worker_backend not in ("thread", "process"):
            raise ValueError(
                f"worker_backend must be 'thread' or 'process', "
                f"got {self.worker_backend!r}"
            )
        if self.plan_cache_entries < 0:
            raise ValueError(
                "plan_cache_entries must be >= 0, "
                f"got {self.plan_cache_entries!r}"
            )
        if self.result_cache_entries < 0:
            raise ValueError(
                "result_cache_entries must be >= 0, "
                f"got {self.result_cache_entries!r}"
            )
        if self.cache_budget_bytes is not None and self.cache_budget_bytes < 0:
            raise ValueError(
                "cache_budget_bytes must be >= 0, "
                f"got {self.cache_budget_bytes!r}"
            )
        if self.catalog is None:
            self.catalog = Catalog(self.fs)
        self.planner = Planner(self.catalog)
        self._plan_modifiers: list = []
        self._lock = threading.RLock()
        self.cache_ledger = CacheLedger(budget=self.cache_budget_bytes)
        self._plan_cache: PlanCache | None = (
            PlanCache(self.plan_cache_entries, ledger=self.cache_ledger)
            if self.plan_cache_entries > 0
            else None
        )
        self._result_cache: ResultCache | None = (
            ResultCache(self.cache_ledger, capacity=self.result_cache_entries)
            if self.result_cache_enabled
            else None
        )
        self._scan_pool: ThreadPoolExecutor | None = None
        self._scan_pool_size = 0
        self._proc_pool = None  # ProcessMorselPool, built lazily
        self._proc_pool_size = 0
        #: accumulated across queries; reset with `reset_session_metrics`
        self.session_metrics = QueryMetrics()

    # ------------------------------------------------------------------
    # plan modifiers (the Maxson hook)
    # ------------------------------------------------------------------
    def add_plan_modifier(self, modifier) -> None:
        """Register an object with ``modify(planned, state) -> PhysicalPlan``.

        Idempotent: registering an already-installed modifier is a no-op,
        so nested install/remove pairs (e.g. re-entrant ``baseline_sql``)
        cannot double-apply a modifier.
        """
        with self._lock:
            if modifier not in self._plan_modifiers:
                self._plan_modifiers.append(modifier)
                # The plan cache must drop instrumented plans outright;
                # the result cache keys on modifier tokens, so entries
                # from other modifier configurations stay valid (and a
                # token-less modifier bypasses it entirely).
                self.invalidate_plan_cache()

    def remove_plan_modifier(self, modifier) -> None:
        """Deregister a modifier. Idempotent: removing a modifier that is
        not installed is a no-op rather than a ``ValueError``."""
        with self._lock:
            if modifier in self._plan_modifiers:
                self._plan_modifiers.remove(modifier)
                self.invalidate_plan_cache()

    # ------------------------------------------------------------------
    # plan cache + morsel worker pool
    # ------------------------------------------------------------------
    def invalidate_plan_cache(self) -> None:
        """Drop every cached plan (generation swaps, modifier changes)."""
        if self._plan_cache is not None:
            self._plan_cache.clear()

    def configure_plan_cache(self, entries: int) -> None:
        """Resize (or disable, with 0) the plan cache."""
        if entries < 0:
            raise ValueError(f"plan_cache_entries must be >= 0, got {entries!r}")
        with self._lock:
            self.plan_cache_entries = entries
            self._plan_cache = PlanCache(entries) if entries > 0 else None

    def plan_cache_stats(self) -> dict[str, int]:
        """Counters of the plan cache (all zero when disabled)."""
        if self._plan_cache is None:
            return {
                "entries": 0,
                "capacity": 0,
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "invalidations": 0,
            }
        return self._plan_cache.stats()

    # ------------------------------------------------------------------
    # result cache
    # ------------------------------------------------------------------
    def invalidate_result_cache(self) -> None:
        """Drop every cached result (generation swaps, modifier changes).

        Keys already embed catalog/modifier tokens, so this is about
        releasing budget bytes promptly, not correctness."""
        if getattr(self, "_result_cache", None) is not None:
            self._result_cache.clear()

    def configure_result_cache(
        self, enabled: bool, entries: int | None = None
    ) -> None:
        """Enable, resize or disable the semantic result cache."""
        with self._lock:
            if entries is not None:
                if entries < 0:
                    raise ValueError(
                        f"result_cache_entries must be >= 0, got {entries!r}"
                    )
                self.result_cache_entries = entries
            if self._result_cache is not None:
                self._result_cache.clear()
            self.result_cache_enabled = enabled
            self._result_cache = (
                ResultCache(
                    self.cache_ledger, capacity=self.result_cache_entries
                )
                if enabled
                else None
            )

    def configure_cache_budget(self, budget_bytes: int | None) -> None:
        """Set (or clear) the unified byte budget for all cache tiers."""
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(
                f"cache_budget_bytes must be >= 0, got {budget_bytes!r}"
            )
        with self._lock:
            self.cache_budget_bytes = budget_bytes
            self.cache_ledger.budget = budget_bytes

    def result_cache_stats(self) -> dict[str, int]:
        """Counters of the result cache (all zero when disabled)."""
        if self._result_cache is None:
            return {
                "entries": 0,
                "capacity": 0,
                "bytes": 0,
                "hits": 0,
                "intermediate_hits": 0,
                "misses": 0,
                "admissions": 0,
                "rejections": 0,
                "evictions": 0,
                "invalidations": 0,
            }
        return self._result_cache.stats()

    def probable_result_cache_hit(self, sql: str) -> bool:
        """Whether ``sql`` would (probably) be served from the result
        cache right now. A counter-free hint for admission priority —
        cheap recurrences jump the queue, so the answer must not
        perturb hit/miss statistics. Never raises: canonicalization
        failures (e.g. syntax errors) simply report False.
        """
        rcache = self._result_cache
        if rcache is None:
            return False
        try:
            _, tokens = self._modifier_snapshot()
            if tokens is None:
                return False
            canonical = rcache.canonicalize(
                sql, self.planner, self.catalog.version
            )
            if canonical is None:
                return False
            version = self.catalog.version
            key = (canonical.text, canonical.params, version, tokens)
            prefix_key = None
            if canonical.prefix_text is not None:
                prefix_key = (
                    canonical.prefix_text, canonical.params, version, tokens
                )
            return rcache.peek(key, prefix_key)
        except Exception:  # noqa: BLE001 - a hint must never fail a query
            return False

    def shrink_caches_to(self, budget_bytes: int) -> int:
        """Release cache bytes until the ledger total fits ``budget_bytes``.

        Watchdog ordering: the result tier yields first (lowest-benefit
        entries), then the plan tier (LRU). The document tier is
        per-query transient state and self-clamps via the ledger budget,
        so it is not force-evicted here. Returns bytes released.
        """
        before = self.cache_ledger.total()
        if before <= budget_bytes:
            return 0
        if self._result_cache is not None:
            other = before - self.cache_ledger.tier_bytes("result")
            self._result_cache.shrink_to_bytes(max(0, budget_bytes - other))
        total = self.cache_ledger.total()
        if total > budget_bytes and self._plan_cache is not None:
            other = total - self.cache_ledger.tier_bytes("plan")
            self._plan_cache.shrink_to_bytes(max(0, budget_bytes - other))
        return before - self.cache_ledger.total()

    def _morsel_pool(self):
        """The shared split-worker pool (rebuilt if ``scan_workers`` or
        ``worker_backend`` changed); None when the session is serial.

        Thread backend: a plain ``ThreadPoolExecutor``. Process backend:
        a :class:`repro.engine.procpool.ProcessMorselPool`, which the
        morsel scheduler detects by duck type (``pool.run_morsels``)."""
        if self.scan_workers <= 1:
            return None
        with self._lock:
            if self.worker_backend == "process":
                if self._scan_pool is not None:
                    self._scan_pool.shutdown(wait=False)
                    self._scan_pool = None
                    self._scan_pool_size = 0
                if (
                    self._proc_pool is None
                    or self._proc_pool_size != self.scan_workers
                ):
                    from .procpool import ProcessMorselPool, build_snapshot

                    if self._proc_pool is not None:
                        self._proc_pool.close()
                    self._proc_pool = ProcessMorselPool(
                        self.scan_workers,
                        snapshot_fn=lambda: build_snapshot(self),
                        observer=self.worker_observer,
                    )
                    self._proc_pool_size = self.scan_workers
                return self._proc_pool
            if self._proc_pool is not None:
                self._proc_pool.close()
                self._proc_pool = None
                self._proc_pool_size = 0
            if (
                self._scan_pool is None
                or self._scan_pool_size != self.scan_workers
            ):
                if self._scan_pool is not None:
                    self._scan_pool.shutdown(wait=False)
                self._scan_pool = ThreadPoolExecutor(
                    max_workers=self.scan_workers,
                    thread_name_prefix="morsel",
                )
                self._scan_pool_size = self.scan_workers
            return self._scan_pool

    def live_shm_bytes(self) -> int:
        """Bytes of shared memory currently held by the process-pool
        backend (result segments in flight plus the cancel-flag slab);
        0 on the thread backend. The memory watchdog charges this
        against its soft limit."""
        pool = self._proc_pool
        return pool.live_shm_bytes if pool is not None else 0

    def close_worker_pools(self) -> None:
        """Tear down morsel worker pools (thread and process). Safe to
        call repeatedly; pools rebuild lazily on the next query."""
        with self._lock:
            if self._scan_pool is not None:
                self._scan_pool.shutdown(wait=False)
                self._scan_pool = None
                self._scan_pool_size = 0
            if self._proc_pool is not None:
                self._proc_pool.close()
                self._proc_pool = None
                self._proc_pool_size = 0

    def _context_factory(self) -> EvalContext:
        context = EvalContext(parser=self.parser_factory())
        if self.projection_parser_factory is not None:
            context.projection_parser = self.projection_parser_factory()
        # Under a unified budget the per-query document cache may not
        # exceed the whole allowance on its own.
        if self.cache_ledger.budget is not None:
            context.doc_cache_bytes = min(
                DEFAULT_DOC_CACHE_BYTES, self.cache_ledger.budget
            )
        return context

    def _make_state(self, tracer=None, cancel_token=None) -> ExecState:
        return ExecState(
            catalog=self.catalog,
            context=self._context_factory(),
            tracer=tracer,
            context_factory=self._context_factory,
            scan_workers=self.scan_workers,
            scan_pool=self._morsel_pool(),
            cancel_token=cancel_token,
        )

    def _modifier_snapshot(self) -> tuple[list, tuple | None]:
        """The registered modifiers plus one cache-key token each.

        A modifier declares cache-compatibility by exposing
        ``plan_cache_token()`` (Maxson's does: registry identity +
        breaker epoch). A modifier without one may rewrite differently
        on every call, so its presence makes the whole query
        uncacheable — ``tokens`` comes back ``None`` and the plan cache
        is bypassed (every query still runs its ``modify``).
        """
        with self._lock:
            modifiers = list(self._plan_modifiers)
        tokens = []
        for modifier in modifiers:
            token_fn = getattr(modifier, "plan_cache_token", None)
            if not callable(token_fn):
                return modifiers, None
            tokens.append(token_fn())
        return modifiers, tuple(tokens)

    # ------------------------------------------------------------------
    def compile(self, sql: str) -> PlannedQuery:
        """Parse and plan without executing."""
        logical = parse_sql(sql)
        return self.planner.plan(logical)

    def explain(self, sql: str) -> str:
        """The physical plan as text, after plan modifiers run."""
        planned, _, _ = self._prepare(sql)
        return planned.physical.describe()

    def _prepare(
        self, sql: str, tracer=None, cancel_token=None
    ) -> tuple[PlannedQuery, ExecState, float]:
        started = time.perf_counter()
        # Traced queries bypass the plan cache entirely (no lookup, no
        # store): instrumented plans carry tracer-bound wrappers that
        # must never leak into untraced executions, and EXPLAIN ANALYZE
        # should always show a freshly derived plan.
        cache = self._plan_cache if tracer is None else None
        modifiers, tokens = self._modifier_snapshot()
        if tokens is None:  # an unkeyed modifier makes the query uncacheable
            cache = None
        key = None
        if cache is not None:
            key = (fingerprint(sql), self.catalog.version, tokens)
            entry = cache.get(key)
            if entry is not None:
                state = self._make_state(cancel_token=cancel_token)
                # Replay the plan-time metric effects (e.g. Maxson's
                # registry misses are counted during modify()) so a
                # cached query reports the same counters as a planned one.
                state.metrics.merge(entry.planned_metrics)
                state.metrics.extra["plan_cache_hits"] = (
                    state.metrics.extra.get("plan_cache_hits", 0) + 1
                )
                return entry.planned, state, time.perf_counter() - started
        if tracer is not None:
            with tracer.span("plan"):
                planned = self.compile(sql)
        else:
            planned = self.compile(sql)
        state = self._make_state(tracer=tracer, cancel_token=cancel_token)
        if tracer is not None:
            with tracer.span("rewrite", modifiers=len(modifiers)):
                for modifier in modifiers:
                    planned.physical = modifier.modify(planned, state)
            # Traced sessions keep the classic operator tree at
            # scan_workers=1 so operator spans stay per-stage; parallel
            # sessions trade them for per-split spans.
            if self.scan_workers > 1:
                planned.physical = parallelize_plan(planned.physical)
            if tracer.enabled:
                from ..obs.instrument import instrument_plan

                planned.physical = instrument_plan(planned.physical, tracer)
        else:
            for modifier in modifiers:
                planned.physical = modifier.modify(planned, state)
            # Morsel execution is the default untraced path, at any
            # worker count — workers=1 runs the same code inline, which
            # is what makes serial-vs-parallel differentials exact.
            planned.physical = parallelize_plan(planned.physical)
            if cache is not None:
                cache.put(
                    key,
                    CachedPlan(
                        planned=planned,
                        planned_metrics=state.metrics.snapshot(),
                    ),
                )
                state.metrics.extra["plan_cache_misses"] = (
                    state.metrics.extra.get("plan_cache_misses", 0) + 1
                )
        plan_seconds = time.perf_counter() - started
        return planned, state, plan_seconds

    def sql(
        self,
        sql: str,
        execution_mode: str | None = None,
        tracer=None,
        deadline_ms: float | None = None,
        cancel_token=None,
    ) -> QueryResult:
        """Compile and execute one SELECT statement.

        ``execution_mode`` overrides the session default for this query:
        ``"batch"`` runs the vectorized path (operators exchange column
        batches, parses are shared), ``"row"`` forces the per-row
        interpreter. Both produce identical rows — the batch compiler
        falls back to the row interpreter for anything not vectorized.

        ``tracer`` (a :class:`repro.obs.trace.Tracer`) opts this query
        into span recording: the plan is instrumented so every operator
        records wall time and counter deltas, and the result carries the
        root span as ``result.trace``. Without a tracer the query runs
        the exact pre-observability code path.

        ``deadline_ms`` bounds this query's wall time: a
        :class:`~repro.engine.cancel.CancelToken` carrying the deadline
        is threaded through the morsel scheduler and checked at
        split/batch boundaries and inside raw-parse fallback loops, so a
        timed-out query raises ``DeadlineExceededError`` within bounded
        slack and never returns partial rows. ``cancel_token`` supplies
        an externally owned token instead (e.g. the server's, so drain
        can cancel in-flight queries); when both are given the token is
        tightened to the earlier deadline.
        """
        mode = execution_mode if execution_mode is not None else self.execution_mode
        if mode not in ("batch", "row"):
            raise ValueError(
                f"execution_mode must be 'batch' or 'row', got {mode!r}"
            )
        token = cancel_token
        if deadline_ms is not None:
            if token is None:
                token = CancelToken.with_deadline_ms(deadline_ms)
            else:
                token.tighten_deadline(deadline_ms / 1000.0)
        if token is not None:
            # A query that arrives already past its deadline (or already
            # cancelled) raises before any work — including before a
            # result-cache serve, so "expired" never silently succeeds.
            token.check()
        # -- semantic result cache -------------------------------------
        # Canonicalize first: the canonical fingerprint + parameter
        # vector + (catalog version, modifier tokens) is the result key.
        # Execution mode is deliberately absent from the key — row,
        # batch and morsel-parallel execution return identical rows, so
        # a result produced by any mode serves all of them.
        rcache = self._result_cache
        canonical = None
        result_key = None
        prefix_key = None
        if rcache is not None:
            _, tokens = self._modifier_snapshot()
            if tokens is not None:  # unkeyed modifiers bypass, like plans
                canonical = rcache.canonicalize(
                    sql, self.planner, self.catalog.version
                )
            if canonical is not None:
                version = self.catalog.version
                result_key = (canonical.text, canonical.params, version, tokens)
                if canonical.prefix_text is not None:
                    prefix_key = (
                        canonical.prefix_text, canonical.params, version, tokens
                    )
                rcache.note_recurrence(canonical.text)
        result_cache_missed = False
        if result_key is not None and tracer is None:
            served = self._serve_cached_result(result_key, prefix_key, canonical)
            if served is not None:
                return served
            result_cache_missed = True
        query_span = (
            tracer.begin("query", mode=mode) if tracer is not None else None
        )
        if tracer is not None and result_key is not None:
            # Traced queries never serve from the result cache (EXPLAIN
            # ANALYZE must show a real execution) but still record the
            # decision as a span.
            would_hit = rcache.peek(result_key, prefix_key)
            with tracer.span(
                "result_cache",
                decision="bypass_traced" if would_hit else "miss",
                cached=would_hit,
            ):
                pass
        planned, state, plan_seconds = self._prepare(
            sql, tracer=tracer, cancel_token=token
        )
        started = time.perf_counter()
        try:
            if tracer is None:
                if mode == "batch":
                    rows = planned.physical.execute_batch(state).to_rows()
                else:
                    rows = planned.physical.execute(state)
            else:
                with tracer.span("execute", mode=mode):
                    if mode == "batch":
                        rows = planned.physical.execute_batch(state).to_rows()
                    else:
                        rows = planned.physical.execute(state)
        except QueryCancelledError:
            # No partial rows, no result-cache admission: the exception
            # unwinds before any of the post-execution bookkeeping.
            if query_span is not None:
                query_span.attributes["status"] = "cancelled"
                tracer.end(query_span)
            raise
        total = time.perf_counter() - started
        metrics = state.metrics
        metrics.plan_seconds = plan_seconds
        metrics.total_seconds = total
        metrics.rows_output = len(rows)
        metrics.shared_parse_hits += state.context.shared_parse_hits()
        metrics.doc_cache_evictions += state.context.doc_cache_evictions()
        parse_stats = state.context.parser.stats
        metrics.parse_seconds += parse_stats.seconds
        metrics.parse_documents += parse_stats.documents
        metrics.parse_bytes += parse_stats.bytes_scanned
        for extra_parser in (
            state.context.projection_parser,
            state.context.xml_parser,
        ):
            if extra_parser is not None and hasattr(extra_parser, "stats"):
                metrics.parse_seconds += extra_parser.stats.seconds
                metrics.parse_documents += extra_parser.stats.documents
                metrics.parse_bytes += extra_parser.stats.bytes_scanned
        self._observe_document_tier(state)
        # -- result-cache admission ------------------------------------
        # A query that degraded (any split answered by raw-parse
        # fallback) may hold an incomplete or stale-shaped answer; it is
        # never admitted. Failed queries never reach this point.
        if result_key is not None:
            if result_cache_missed:
                metrics.extra["result_cache_misses"] = (
                    metrics.extra.get("result_cache_misses", 0) + 1
                )
            degraded = metrics.extra.get("degraded_splits", 0)
            if degraded == 0:
                admitted = rcache.admit(
                    result_key,
                    canonical,
                    rows,
                    cost_seconds=plan_seconds + total,
                    referenced_paths=planned.referenced_json_paths,
                    plan=planned.physical,
                )
                counter = (
                    "result_cache_admissions"
                    if admitted
                    else "result_cache_rejections"
                )
                metrics.extra[counter] = metrics.extra.get(counter, 0) + 1
                if tracer is not None:
                    with tracer.span(
                        "result_cache_admission", admitted=admitted
                    ):
                        pass
            elif tracer is not None:
                with tracer.span(
                    "result_cache_admission",
                    admitted=False,
                    reason="degraded_splits",
                ):
                    pass
        with self._lock:
            self.session_metrics.merge(metrics)
        trace_root = None
        if tracer is not None:
            query_span.attributes.update(
                total_seconds=metrics.total_seconds,
                plan_seconds=metrics.plan_seconds,
                read_seconds=metrics.read_seconds,
                parse_seconds=metrics.parse_seconds,
                parse_documents=metrics.parse_documents,
                rows_out=metrics.rows_output,
            )
            tracer.end(query_span)
            trace_root = query_span
        return QueryResult(
            rows=rows,
            metrics=metrics,
            plan=planned.physical,
            trace=trace_root,
            referenced_json_paths=planned.referenced_json_paths,
        )

    def _serve_cached_result(
        self, key: tuple, prefix_key: tuple | None, canonical
    ) -> QueryResult | None:
        """Answer a query from the result cache, or None on a miss."""
        started = time.perf_counter()
        found = self._result_cache.fetch(key, canonical, prefix_key)
        if found is None:
            return None
        rows, entry, from_intermediate = found
        metrics = QueryMetrics()
        metrics.rows_output = len(rows)
        metrics.total_seconds = time.perf_counter() - started
        metrics.extra["result_cache_hits"] = 1
        if from_intermediate:
            metrics.extra["result_cache_intermediate_hits"] = 1
        with self._lock:
            self.session_metrics.merge(metrics)
        return QueryResult(
            rows=rows,
            metrics=metrics,
            plan=entry.plan,
            referenced_json_paths=list(entry.referenced_paths),
        )

    def _observe_document_tier(self, state: ExecState) -> None:
        """Publish the document cache's bytes to the unified ledger.

        The document cache is per-query and dies with its context; the
        ledger keeps the last observation so the ``document`` tier shows
        up in occupancy gauges and constrains result-cache admission
        within the same query's accounting window."""
        observed = 0
        for cache in (
            state.context.json_documents,
            state.context.xml_documents,
        ):
            if cache is not None:
                observed += cache.current_bytes
        self.cache_ledger.set_tier("document", observed)

    def explain_analyze(
        self, sql: str, execution_mode: str | None = None
    ) -> str:
        """Execute ``sql`` under a fresh tracer and render the annotated
        plan (per-operator wall time, rows, parse counts, cache hits)."""
        from ..obs.explain import render_explain_analyze
        from ..obs.trace import Tracer

        mode = (
            execution_mode if execution_mode is not None else self.execution_mode
        )
        result = self.sql(sql, execution_mode=mode, tracer=Tracer())
        return render_explain_analyze(
            result.trace, result.metrics, mode=mode, sql=sql
        )

    def reset_session_metrics(self) -> None:
        with self._lock:
            self.session_metrics = QueryMetrics()
