"""Catalog: databases, tables, and their file-system backing.

Tables are directories of ORC-like files in a
:class:`~repro.storage.fs.BlockFileSystem` (one directory per table, path
``/warehouse/<db>/<table>``). The catalog tracks table schemas and exposes
the *last modification time*, which Maxson's plan rewriter compares against
cache timestamps to decide cache validity (paper Algorithm 1, lines 16-19).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..storage.fs import BlockFileSystem
from ..storage.orc import OrcWriter
from ..storage.schema import Schema
from .errors import CatalogError

__all__ = ["TableInfo", "Catalog"]


@dataclass
class TableInfo:
    """Metadata for one table."""

    database: str
    name: str
    schema: Schema
    location: str
    properties: dict[str, str] = field(default_factory=dict)

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.name}"


class Catalog:
    """Metadata store over a shared file system.

    The catalog is the single source of truth for schemas and locations.
    Data operations (:meth:`append_rows`) write through to the file system;
    modification times come from the files themselves so that out-of-band
    updates (e.g. the workload simulator appending a daily partition) are
    observed correctly.
    """

    def __init__(self, fs: BlockFileSystem, warehouse_root: str = "/warehouse") -> None:
        self.fs = fs
        self.warehouse_root = warehouse_root.rstrip("/")
        self._tables: dict[tuple[str, str], TableInfo] = {}
        # DDL and lookups run concurrently in server mode (cache builds
        # create/drop tables while query threads resolve scans).
        self._lock = threading.RLock()
        # Monotonic metadata version: bumped by every DDL statement and
        # every data append. Plan-cache keys embed it so any catalog
        # change (including cache-generation swaps, which create and drop
        # generation tables) invalidates cached plans.
        self._version = 0

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        database: str,
        name: str,
        schema: Schema,
        properties: dict[str, str] | None = None,
    ) -> TableInfo:
        key = (database, name)
        with self._lock:
            if key in self._tables:
                raise CatalogError(f"table exists: {database}.{name}")
            info = TableInfo(
                database=database,
                name=name,
                schema=schema,
                location=f"{self.warehouse_root}/{database}/{name}",
                properties=dict(properties or {}),
            )
            self._tables[key] = info
            self._version += 1
            return info

    def drop_table(self, database: str, name: str) -> None:
        key = (database, name)
        with self._lock:
            if key not in self._tables:
                raise CatalogError(f"no such table: {database}.{name}")
            info = self._tables.pop(key)
            self._version += 1
        if self.fs.exists(info.location):
            self.fs.delete(info.location)

    def get_table(self, database: str, name: str) -> TableInfo:
        with self._lock:
            try:
                return self._tables[(database, name)]
            except KeyError:
                raise CatalogError(f"no such table: {database}.{name}") from None

    def table_exists(self, database: str, name: str) -> bool:
        with self._lock:
            return (database, name) in self._tables

    def list_tables(self, database: str | None = None) -> list[TableInfo]:
        with self._lock:
            return [
                info
                for (db, _), info in sorted(self._tables.items())
                if database is None or db == database
            ]

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    def append_rows(
        self,
        database: str,
        name: str,
        rows: list[tuple],
        row_group_size: int | None = None,
        stripe_bytes: int | None = None,
    ) -> str:
        """Write ``rows`` as one new immutable file; returns its path.

        Each call creates a new file ``part-NNNNN.orc``, mirroring the
        daily-append pattern of the production workload: data loaded
        together lands in the same file and is never modified afterwards.
        """
        info = self.get_table(database, name)
        kwargs = {}
        if row_group_size is not None:
            kwargs["row_group_size"] = row_group_size
        if stripe_bytes is not None:
            kwargs["stripe_bytes"] = stripe_bytes
        writer = OrcWriter(info.schema, **kwargs)
        writer.write_rows(rows)
        data = writer.finish()
        # Choosing the next part index and creating the file must be one
        # atomic step or two concurrent appends would collide on a name.
        with self._lock:
            existing = (
                self.fs.list_directory(info.location)
                if self.fs.exists(info.location)
                else []
            )
            path = f"{info.location}/part-{len(existing):05d}.orc"
            self.fs.create(path, data)
            self._version += 1
        return path

    def table_files(self, database: str, name: str) -> list[str]:
        """File paths of the table, in split-index order."""
        info = self.get_table(database, name)
        if not self.fs.exists(info.location):
            return []
        return self.fs.file_splits(info.location)

    def modification_time(self, database: str, name: str) -> float:
        """Latest mtime across the table's files (0.0 for empty tables)."""
        info = self.get_table(database, name)
        if not self.fs.exists(info.location):
            return 0.0
        return self.fs.directory_mtime(info.location)

    def table_bytes(self, database: str, name: str) -> int:
        """Total on-disk size of the table."""
        info = self.get_table(database, name)
        return self.fs.directory_size(info.location)
