"""Logical plan nodes.

The SQL parser produces this representation; the planner lowers it to
physical operators. The node set covers the plan shapes of the paper's
workload: scans with JSON extraction, filters, projections, group-by
aggregation, self-joins, sorts and limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .expressions import Expression

__all__ = [
    "LogicalPlan",
    "LogicalScan",
    "LogicalJoin",
    "LogicalFilter",
    "LogicalProject",
    "LogicalAggregate",
    "LogicalSort",
    "LogicalLimit",
    "SortKey",
]


class LogicalPlan:
    """Base class; children() enables generic traversal."""

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def describe(self, indent: int = 0) -> str:
        """A readable plan tree (EXPLAIN-style)."""
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class LogicalScan(LogicalPlan):
    """Scan of ``database.table`` with an optional alias."""

    database: str
    table: str
    alias: str | None = None

    def _label(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        return f"Scan {self.database}.{self.table}{alias}"


@dataclass
class LogicalJoin(LogicalPlan):
    """Inner equi-join (the only join kind the workload uses)."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Expression

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def _label(self) -> str:
        return f"Join on {self.condition.sql()}"


@dataclass
class LogicalFilter(LogicalPlan):
    """WHERE (or HAVING, when above an aggregate)."""

    child: LogicalPlan
    condition: Expression

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Filter {self.condition.sql()}"


@dataclass
class LogicalProject(LogicalPlan):
    """SELECT list."""

    child: LogicalPlan
    expressions: list[Expression]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def _label(self) -> str:
        cols = ", ".join(e.sql() for e in self.expressions)
        return f"Project [{cols}]"


@dataclass
class LogicalAggregate(LogicalPlan):
    """GROUP BY keys + aggregate/project output expressions."""

    child: LogicalPlan
    group_keys: list[Expression]
    output: list[Expression]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def _label(self) -> str:
        keys = ", ".join(e.sql() for e in self.group_keys) or "<global>"
        outs = ", ".join(e.sql() for e in self.output)
        return f"Aggregate keys=[{keys}] out=[{outs}]"


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY item."""

    expression: Expression
    ascending: bool = True


@dataclass
class LogicalSort(LogicalPlan):
    """ORDER BY."""

    child: LogicalPlan
    keys: list[SortKey] = field(default_factory=list)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def _label(self) -> str:
        keys = ", ".join(
            f"{k.expression.sql()} {'ASC' if k.ascending else 'DESC'}" for k in self.keys
        )
        return f"Sort [{keys}]"


@dataclass
class LogicalLimit(LogicalPlan):
    """LIMIT n."""

    child: LogicalPlan
    count: int

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Limit {self.count}"
