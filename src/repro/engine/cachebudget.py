"""Unified cache byte-budget ledger.

The engine holds three in-memory cache tiers that all trade bytes for
repeated work: the **plan cache** (compiled plans), the **document
cache** (parse-once document sharing inside a query), and the **result
cache** (final and intermediate result sets). Before this module each
tier sized itself independently, so their sum was unbounded even when
every individual tier was. :class:`CacheLedger` gives them one shared
budget: tiers charge and release bytes against a single account, and
the result cache admits a candidate only into the bytes the other tiers
have left.

Two kinds of tiers exist:

* **budgeted** tiers (``result``, ``plan``, ``document``) count toward
  :meth:`total` and therefore toward the budget;
* **reported** tiers (e.g. ``jsonpath``, the on-storage cache tables
  built by the midnight cycle) are tracked for observability only —
  they live on storage under the midnight selection budget, not in
  query-engine memory.
"""

from __future__ import annotations

import threading

__all__ = ["BUDGETED_TIERS", "CacheLedger"]

#: Tiers whose bytes count against the shared budget.
BUDGETED_TIERS = ("result", "plan", "document")


class CacheLedger:
    """Thread-safe byte accounting shared by every cache tier.

    ``budget`` is the total byte allowance for the budgeted tiers
    (``None`` = unlimited). Tiers either stream deltas through
    :meth:`charge`/:meth:`release` (plan and result caches, which own
    their entries) or publish absolute observations through
    :meth:`set_tier` (the per-query document cache, whose contents are
    transient).
    """

    def __init__(self, budget: int | None = None) -> None:
        if budget is not None and budget < 0:
            raise ValueError(f"cache budget must be >= 0, got {budget!r}")
        self.budget = budget
        self._tiers: dict[str, int] = {}
        self._lock = threading.Lock()

    def charge(self, tier: str, nbytes: int) -> None:
        with self._lock:
            self._tiers[tier] = self._tiers.get(tier, 0) + int(nbytes)

    def release(self, tier: str, nbytes: int) -> None:
        with self._lock:
            self._tiers[tier] = max(0, self._tiers.get(tier, 0) - int(nbytes))

    def set_tier(self, tier: str, nbytes: int) -> None:
        """Publish an absolute occupancy observation for ``tier``."""
        with self._lock:
            self._tiers[tier] = max(0, int(nbytes))

    def tier_bytes(self, tier: str) -> int:
        with self._lock:
            return self._tiers.get(tier, 0)

    def total(self) -> int:
        """Bytes held by the budgeted tiers (what the budget constrains)."""
        with self._lock:
            return sum(self._tiers.get(t, 0) for t in BUDGETED_TIERS)

    def available(self) -> int | None:
        """Bytes left under the budget; ``None`` when unbudgeted."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.total())

    def over_budget(self, extra: int = 0) -> bool:
        """Would the budgeted tiers exceed the budget with ``extra`` more?"""
        if self.budget is None:
            return False
        return self.total() + extra > self.budget

    def to_dict(self) -> dict[str, object]:
        with self._lock:
            tiers = dict(self._tiers)
        total = sum(tiers.get(t, 0) for t in BUDGETED_TIERS)
        return {
            "budget_bytes": self.budget,
            "total_bytes": total,
            "tiers": tiers,
        }
