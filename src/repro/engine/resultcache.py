"""Semantic result cache: canonicalize recurring queries, reuse rows.

The paper's trace analysis found 82% of raw-data queries recurring
daily or weekly. The plan cache (:mod:`repro.engine.plancache`) removes
re-planning from those recurrences; this module removes re-*execution*:
the finished rows of a query are stored under a semantic key, and a
recurrence — even one reformatted, recased, re-aliased or with its
predicates reordered — is answered from memory.

Three pieces:

**Canonicalizer.** A rule-based normalizer over the parsed (and
identifier-resolved) statement. It renders the logical plan to a
canonical structural text in which keyword case is gone (everything is
rendered lowercase), table aliases are positional (``t0``, ``t1``…),
output aliases are stripped, commutative predicate chains (AND/OR,
IN lists, ``=``/``!=`` operands) are ordered deterministically, and
literals are replaced by placeholders whose values move into a separate
*parameter vector*. Semantically equivalent statements therefore share
one canonical fingerprint; statements differing only in literal values
share the fingerprint (for recurrence statistics) but not the cache key.

**Result store.** Entries hold final result sets, and — for queries
shaped ``scan → filter → project`` — double as *intermediate* results:
a recurrence that adds only ``ORDER BY``/``LIMIT`` on top of a cached
prefix is served by replaying the engine's exact sort/limit semantics
(:func:`repro.engine.physical._sort_token`, stable right-to-left) over
the cached rows. Keys embed the same catalog-version and plan-modifier
tokens the plan cache uses, so DDL, data appends, cache-generation
swaps and circuit-breaker transitions all invalidate by key mismatch.

**Benefit-based admission.** Candidates are scored Maxson-style by
acceleration per byte — (observed execution seconds saved × recurrence
count from the session's trace statistics) / result bytes — and compete
for space with the plan and document caches under one shared
:class:`~repro.engine.cachebudget.CacheLedger` byte budget: a candidate
is admitted only if it fits the remaining budget or out-scores the
lowest-value resident entries, which are then evicted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .cachebudget import CacheLedger
from .errors import EngineError
from .expressions import (
    AggregateCall,
    Alias,
    Between,
    BinaryOp,
    CastExpr,
    Column,
    Expression,
    InList,
    Literal,
    UnaryOp,
)
from .functions import FunctionCall
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from .physical import _sort_token
from .plancache import fingerprint
from .planner import _resolve_keys_against_output
from .sqlparser import Star, parse_sql

__all__ = ["CanonicalStatement", "ResultCache", "canonicalize"]


class _Uncanonical(Exception):
    """Raised internally when a statement cannot be canonicalized."""


# ----------------------------------------------------------------------
# canonicalization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CanonicalStatement:
    """The semantic identity of one parsed statement.

    ``text`` + ``params`` identify the statement (together with the
    session's catalog/modifier tokens); ``text`` alone is the
    *fingerprint* under which recurrence statistics accumulate, so two
    recurrences with different literal values still count toward the
    same query template's popularity.
    """

    text: str
    params: tuple
    #: Output column names in select-list order, or ``None`` when the
    #: statement is not alias-remappable (``*`` in the select list, or
    #: duplicate output names); non-remappable results are stored and
    #: served verbatim, with the alias pattern folded into ``params``.
    output_names: tuple[str, ...] | None
    #: Canonical text of the shared scan→filter→project prefix when the
    #: statement decomposes as prefix + ORDER BY/LIMIT; ``None`` otherwise.
    prefix_text: str | None = None
    #: ``(output column, ascending)`` sort keys to replay over cached
    #: prefix rows (empty tuple = no sort, limit only).
    suffix_sort: tuple[tuple[str, bool], ...] = ()
    suffix_limit: int | None = None

    @property
    def is_bare_prefix(self) -> bool:
        """True when the statement *is* its own prefix (its final rows
        double as the shared intermediate, in scan order)."""
        return self.prefix_text is not None and self.prefix_text == self.text


class _Renderer:
    """Renders expressions to canonical text, optionally binding literals.

    ``params=None`` renders literals inline (used to order commutative
    operands deterministically, literal values included); a list collects
    ``(type_name, value)`` pairs while the rendering emits ``?``. Type
    names keep ``1``/``1.0``/``True`` distinct even though Python hashes
    them equal.
    """

    def __init__(self, alias_map: dict[str, str], params: list | None) -> None:
        self.alias_map = alias_map
        self.params = params

    def _inline(self) -> "_Renderer":
        return _Renderer(self.alias_map, None)

    def expr(self, e: Expression) -> str:
        if isinstance(e, Alias):
            return self.expr(e.child)  # output aliases are not identity
        if isinstance(e, Column):
            return self._column(e)
        if isinstance(e, Literal):
            if self.params is None:
                return f"{type(e.value).__name__}:{e.value!r}"
            self.params.append((type(e.value).__name__, e.value))
            return "?"
        if isinstance(e, Star):
            return "*"
        if isinstance(e, BinaryOp):
            return self._binary(e)
        if isinstance(e, UnaryOp):
            return f"({e.op} {self.expr(e.child)})"
        if isinstance(e, CastExpr):
            return f"cast({self.expr(e.child)} as {e.target})"
        if isinstance(e, InList):
            return self._in_list(e)
        if isinstance(e, Between):
            return (
                f"({self.expr(e.child)} between "
                f"{self.expr(e.low)} and {self.expr(e.high)})"
            )
        if isinstance(e, AggregateCall):
            inner = self.expr(e.argument) if e.argument is not None else "*"
            prefix = "distinct " if e.distinct else ""
            return f"{e.func}({prefix}{inner})"
        if isinstance(e, FunctionCall):
            args = ", ".join(self.expr(a) for a in e.arguments)
            return f"{e.name.lower()}({args})"
        # ExtractionCall subclasses (get_json_object / get_xml_object)
        # carry their path as data; render it verbatim but fold the
        # column reference.
        from .expressions import ExtractionCall

        if isinstance(e, ExtractionCall):
            return f"{e.function_name}({self.expr(e.column)}, '{e.path}')"
        raise _Uncanonical(type(e).__name__)

    def _column(self, e: Column) -> str:
        name = e.name
        if "." in name:
            prefix, rest = name.split(".", 1)
            tag = self.alias_map.get(prefix.lower())
            if tag is not None:
                return f"{tag}.{rest.lower()}"
        return name.lower()

    def _ordered(self, operands: list[Expression]) -> list[Expression]:
        """Order commutative operands by their literal-inclusive inline
        rendering, so reordered predicates bind parameters identically."""
        inline = self._inline()
        return sorted(operands, key=inline.expr)

    def _binary(self, e: BinaryOp) -> str:
        if e.op in ("and", "or"):
            operands = self._ordered(_flatten(e.op, e))
            parts = [self.expr(op) for op in operands]
            return "(" + f" {e.op} ".join(parts) + ")"
        if e.op in ("=", "!="):
            left, right = self._ordered([e.left, e.right])
            return f"({self.expr(left)} {e.op} {self.expr(right)})"
        return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"

    def _in_list(self, e: InList) -> str:
        options = self._ordered(list(e.options))
        inner = ", ".join(self.expr(o) for o in options)
        return f"({self.expr(e.child)} in ({inner}))"


def _flatten(op: str, e: Expression) -> list[Expression]:
    if isinstance(e, BinaryOp) and e.op == op:
        return _flatten(op, e.left) + _flatten(op, e.right)
    return [e]


def _collect_scans(plan: LogicalPlan) -> list[LogicalScan]:
    if isinstance(plan, LogicalScan):
        return [plan]
    out: list[LogicalScan] = []
    for child in plan.children():
        out.extend(_collect_scans(child))
    return out


def _render_plan(node: LogicalPlan, r: _Renderer) -> str:
    """Structural canonical text for a logical plan (not SQL — a
    deterministic, unambiguous encoding keyed on plan shape)."""
    if isinstance(node, LogicalScan):
        prefix = (node.alias or node.table).lower()
        tag = r.alias_map.get(prefix, prefix)
        return f"scan({node.database.lower()}.{node.table.lower()}@{tag})"
    if isinstance(node, LogicalJoin):
        left = _render_plan(node.left, r)
        right = _render_plan(node.right, r)
        return f"join({left},{right},on={r.expr(node.condition)})"
    if isinstance(node, LogicalFilter):
        return f"filter({_render_plan(node.child, r)},{r.expr(node.condition)})"
    if isinstance(node, LogicalProject):
        cols = ",".join(r.expr(e) for e in node.expressions)
        return f"project({_render_plan(node.child, r)},[{cols}])"
    if isinstance(node, LogicalAggregate):
        keys = ",".join(r.expr(e) for e in node.group_keys)
        outs = ",".join(r.expr(e) for e in node.output)
        return f"agg({_render_plan(node.child, r)},keys=[{keys}],out=[{outs}])"
    if isinstance(node, LogicalSort):
        keys = ",".join(
            f"{r.expr(k.expression)} {'asc' if k.ascending else 'desc'}"
            for k in node.keys
        )
        return f"sort({_render_plan(node.child, r)},[{keys}])"
    if isinstance(node, LogicalLimit):
        return f"limit({_render_plan(node.child, r)},{node.count})"
    raise _Uncanonical(type(node).__name__)


def _select_items(plan: LogicalPlan) -> list[Expression] | None:
    """The select list of the outermost projecting node, if reachable."""
    node = plan
    while isinstance(node, (LogicalLimit, LogicalSort, LogicalFilter)):
        node = node.child  # type: ignore[assignment]
    if isinstance(node, LogicalProject):
        return node.expressions
    if isinstance(node, LogicalAggregate):
        return node.output
    return None


def canonicalize(sql: str, planner) -> CanonicalStatement | None:
    """Canonicalize one statement, or ``None`` when it cannot be.

    ``planner`` supplies the identifier-case resolution pass (the same
    analyzer step real planning runs first), so canonical output names
    match the names execution will actually produce. Parse or analysis
    failures return ``None`` — the caller falls through to the normal
    path, which raises the real error.
    """
    try:
        logical = parse_sql(sql)
    except EngineError:
        return None
    scans = _collect_scans(logical)
    if not scans:
        return None
    if any(
        scan.database and scan.database.lower() == "system" for scan in scans
    ):
        # Telemetry tables mutate on every query without bumping the
        # catalog version (by design — see repro.obs.systables), so the
        # version-keyed invalidation the result cache relies on cannot
        # see their appends. Queries over them are never canonicalized,
        # hence never served from or admitted to the result cache.
        return None
    try:
        planner._resolve_identifier_case(logical, scans)
    except EngineError:
        return None
    alias_map: dict[str, str] = {}
    for index, scan in enumerate(scans):
        prefix = (scan.alias or scan.table).lower()
        if prefix in alias_map:
            return None  # ambiguous prefixes: leave the statement alone
        alias_map[prefix] = f"t{index}"
    params: list = []
    renderer = _Renderer(alias_map, params)
    try:
        return _canonical_from(logical, renderer, params)
    except _Uncanonical:
        return None


def _canonical_from(
    logical: LogicalPlan, renderer: _Renderer, params: list
) -> CanonicalStatement:
    items = _select_items(logical)
    if items is None:
        raise _Uncanonical("no select list")
    names = tuple(e.output_name() for e in items if not isinstance(e, Star))
    remappable = (
        len(names) == len(items) and len(set(names)) == len(names)
    )
    # Decompose prefix + ORDER BY/LIMIT before rendering so both the
    # full text and the prefix text come from one parameter binding.
    node = logical
    limit: int | None = None
    sort_keys = None
    if isinstance(node, LogicalLimit):
        limit = node.count
        node = node.child
    if isinstance(node, LogicalSort):
        sort_keys = node.keys
        node = node.child
    decomposable = (
        remappable
        and (limit is not None or sort_keys is not None)
        and isinstance(node, LogicalProject)
        and (
            isinstance(node.child, LogicalScan)
            or (
                isinstance(node.child, LogicalFilter)
                and isinstance(node.child.child, LogicalScan)
            )
        )
    )
    suffix_sort: tuple[tuple[str, bool], ...] = ()
    sort_positions: list[tuple[int, bool]] = []
    if decomposable and sort_keys is not None:
        positions = {name: i for i, name in enumerate(names)}
        resolved, ok = _resolve_keys_against_output(sort_keys, node.expressions)
        if ok and all(
            isinstance(k.expression, Column) and k.expression.name in positions
            for k in resolved
        ):
            suffix_sort = tuple(
                (k.expression.name, k.ascending) for k in resolved
            )
            sort_positions = [
                (positions[k.expression.name], k.ascending) for k in resolved
            ]
        else:
            decomposable = False  # sort runs below the projection
    bare_prefix = (
        remappable
        and limit is None
        and sort_keys is None
        and isinstance(logical, LogicalProject)
        and (
            isinstance(logical.child, LogicalScan)
            or (
                isinstance(logical.child, LogicalFilter)
                and isinstance(logical.child.child, LogicalScan)
            )
        )
    )
    if decomposable:
        prefix_text = _render_plan(node, renderer)
        text = prefix_text
        if sort_keys is not None:
            # Positional sort keys: sorting by an output column is the
            # same statement whatever that column was aliased to.
            keys = ",".join(
                f"#{position} {'asc' if asc else 'desc'}"
                for position, asc in sort_positions
            )
            text = f"sort({text},[{keys}])"
        if limit is not None:
            text = f"limit({text},{limit})"
    else:
        text = _render_plan(logical, renderer)
        prefix_text = text if bare_prefix else None
    out_params: tuple = tuple(params)
    output_names: tuple[str, ...] | None = names if remappable else None
    if not remappable:
        # Alias patterns are identity for verbatim-served statements:
        # the stored rows carry the producing statement's names.
        markers = tuple(
            "*" if isinstance(e, Star) else e.output_name() for e in items
        )
        out_params = out_params + ("__names__",) + markers
    return CanonicalStatement(
        text=text,
        params=out_params,
        output_names=output_names,
        prefix_text=prefix_text,
        suffix_sort=suffix_sort,
        suffix_limit=limit,
    )


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
def _estimate_bytes(rows) -> int:
    """Cheap deterministic size estimate of a result set (rows may be
    dicts or tuples). Accuracy matters less than monotonicity: bigger
    results must cost more budget."""
    total = 0
    for row in rows:
        total += 80
        values = row.values() if isinstance(row, dict) else row
        for value in values:
            if value is None:
                total += 8
            elif isinstance(value, (bool, int, float)):
                total += 32
            elif isinstance(value, str):
                total += 56 + len(value)
            else:
                total += 56 + len(repr(value))
    return total


@dataclass
class _Entry:
    key: tuple
    canonical_text: str
    nbytes: int
    cost_seconds: float
    referenced_paths: tuple
    plan: object
    is_prefix: bool
    #: Remappable storage: values per select item, in select-list order.
    tuples: list[tuple] | None = None
    #: Verbatim storage (non-remappable statements).
    rows: list[dict] | None = None
    hits: int = 0


@dataclass
class ResultCacheStats:
    hits: int = 0
    intermediate_hits: int = 0
    misses: int = 0
    admissions: int = 0
    rejections: int = 0
    evictions: int = 0
    invalidations: int = 0


_MEMO_CAPACITY = 512
_RECURRENCE_CAPACITY = 4096


class ResultCache:
    """Thread-safe semantic result store under a shared byte ledger."""

    def __init__(
        self,
        ledger: CacheLedger | None = None,
        capacity: int = 256,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"result cache capacity must be >= 0, got {capacity}")
        self.ledger = ledger if ledger is not None else CacheLedger()
        self.capacity = capacity
        self.stats_counters = ResultCacheStats()
        self._entries: dict[tuple, _Entry] = {}
        #: canonical fingerprint -> times seen (the recurrence estimate).
        self._recurrence: dict[str, int] = {}
        #: (sql fingerprint, catalog version) -> CanonicalStatement | None
        self._memo: dict[tuple, CanonicalStatement | None] = {}
        self._lock = threading.RLock()

    # -- canonicalization (memoized per catalog version) ----------------
    def canonicalize(
        self, sql: str, planner, catalog_version: int
    ) -> CanonicalStatement | None:
        memo_key = (fingerprint(sql), catalog_version)
        with self._lock:
            if memo_key in self._memo:
                self._memo[memo_key] = self._memo.pop(memo_key)  # LRU touch
                return self._memo[memo_key]
        canonical = canonicalize(sql, planner)
        with self._lock:
            while len(self._memo) >= _MEMO_CAPACITY:
                self._memo.pop(next(iter(self._memo)))
            self._memo[memo_key] = canonical
        return canonical

    def note_recurrence(self, canonical_text: str) -> int:
        """Record one observation of a canonical fingerprint; returns the
        updated recurrence count (the admission-time benefit multiplier)."""
        with self._lock:
            count = self._recurrence.pop(canonical_text, 0) + 1
            while len(self._recurrence) >= _RECURRENCE_CAPACITY:
                self._recurrence.pop(next(iter(self._recurrence)))
            self._recurrence[canonical_text] = count
            return count

    # -- lookup ---------------------------------------------------------
    def fetch(
        self,
        key: tuple,
        canonical: CanonicalStatement,
        prefix_key: tuple | None = None,
    ):
        """Serve ``key`` (or its prefix) if cached.

        Returns ``(rows, entry, from_intermediate)`` or ``None``. Rows
        are freshly-built dicts carrying the *caller's* output names, so
        a recurrence that only renamed its aliases still reads correctly
        labelled columns.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries[key] = self._entries.pop(key)  # LRU touch
                self.stats_counters.hits += 1
                entry.hits += 1
                return self._build_rows(entry, canonical), entry, False
            if prefix_key is not None:
                prefix = self._entries.get(prefix_key)
                if (
                    prefix is not None
                    and prefix.is_prefix
                    and prefix.tuples is not None
                    and canonical.output_names is not None
                ):
                    self._entries[prefix_key] = self._entries.pop(prefix_key)
                    self.stats_counters.hits += 1
                    self.stats_counters.intermediate_hits += 1
                    prefix.hits += 1
                    rows = [
                        dict(zip(canonical.output_names, values))
                        for values in prefix.tuples
                    ]
                    rows = _apply_suffix(rows, canonical)
                    return rows, prefix, True
            self.stats_counters.misses += 1
            return None

    def peek(self, key: tuple, prefix_key: tuple | None = None) -> bool:
        """Counter-free presence check (traced queries record the
        decision without consuming or skewing hit statistics)."""
        with self._lock:
            if key in self._entries:
                return True
            if prefix_key is not None:
                prefix = self._entries.get(prefix_key)
                return prefix is not None and prefix.is_prefix
            return False

    def _build_rows(
        self, entry: _Entry, canonical: CanonicalStatement
    ) -> list[dict]:
        if entry.tuples is not None and canonical.output_names is not None:
            names = canonical.output_names
            return [dict(zip(names, values)) for values in entry.tuples]
        if entry.rows is not None:
            return [dict(row) for row in entry.rows]
        # Remappable entry fetched by a statement whose own canonical
        # lost its names — cannot happen for matching keys, but fail
        # safe by rebuilding verbatim from tuples with stored order.
        return [dict(row) for row in (entry.rows or [])]

    # -- admission ------------------------------------------------------
    def admit(
        self,
        key: tuple,
        canonical: CanonicalStatement,
        rows: list[dict],
        cost_seconds: float,
        referenced_paths=(),
        plan: object = None,
    ) -> bool:
        """Benefit-scored admission; True when the entry was stored."""
        if self.capacity == 0:
            with self._lock:
                self.stats_counters.rejections += 1
            return False
        tuples: list[tuple] | None = None
        verbatim: list[dict] | None = None
        if canonical.output_names is not None:
            names = canonical.output_names
            try:
                tuples = [tuple(row[n] for n in names) for row in rows]
            except KeyError:
                # Output names drifted from executed row keys (defensive:
                # should not happen post identifier resolution).
                with self._lock:
                    self.stats_counters.rejections += 1
                return False
            nbytes = _estimate_bytes(tuples)
        else:
            verbatim = [dict(row) for row in rows]
            nbytes = _estimate_bytes(verbatim)
        with self._lock:
            recurrence = self._recurrence.get(canonical.text, 1)
            score = _score(cost_seconds, recurrence, nbytes)
            budget = self.ledger.budget
            if budget is not None and nbytes > budget:
                self.stats_counters.rejections += 1
                return False
            if key in self._entries:
                self._evict_locked(key, count=False)
            while self._entries and (
                len(self._entries) >= self.capacity
                or self.ledger.over_budget(nbytes)
            ):
                victim_key, victim = min(
                    self._entries.items(),
                    key=lambda item: self._score_of(item[1]),
                )
                if self._score_of(victim) >= score:
                    self.stats_counters.rejections += 1
                    return False
                self._evict_locked(victim_key)
            if self.ledger.over_budget(nbytes):
                # Nothing left to evict and still no room: the other
                # tiers own the budget right now.
                self.stats_counters.rejections += 1
                return False
            entry = _Entry(
                key=key,
                canonical_text=canonical.text,
                nbytes=nbytes,
                cost_seconds=cost_seconds,
                referenced_paths=tuple(referenced_paths),
                plan=plan,
                is_prefix=canonical.is_bare_prefix,
                tuples=tuples,
                rows=verbatim,
            )
            self._entries[key] = entry
            self.ledger.charge("result", nbytes)
            self.stats_counters.admissions += 1
            return True

    def _score_of(self, entry: _Entry) -> float:
        recurrence = self._recurrence.get(entry.canonical_text, 1)
        return _score(entry.cost_seconds, recurrence, entry.nbytes)

    def _evict_locked(self, key: tuple, count: bool = True) -> None:
        entry = self._entries.pop(key)
        self.ledger.release("result", entry.nbytes)
        if count:
            self.stats_counters.evictions += 1

    # -- maintenance ----------------------------------------------------
    def shrink_to_bytes(self, target_bytes: int) -> int:
        """Evict lowest-benefit entries until the tier fits ``target_bytes``.

        Returns bytes released. The server's memory-pressure watchdog
        calls this before shedding queries; victim order matches
        admission's min-score choice, so the cheapest-to-recompute
        results go first.
        """
        released = 0
        with self._lock:
            used = sum(e.nbytes for e in self._entries.values())
            while self._entries and used > target_bytes:
                victim_key = min(
                    self._entries.items(),
                    key=lambda item: self._score_of(item[1]),
                )[0]
                nbytes = self._entries[victim_key].nbytes
                self._evict_locked(victim_key)
                used -= nbytes
                released += nbytes
        return released

    def clear(self) -> None:
        """Drop everything (generation swaps, modifier changes)."""
        with self._lock:
            self.stats_counters.invalidations += len(self._entries)
            self.ledger.release(
                "result", sum(e.nbytes for e in self._entries.values())
            )
            self._entries.clear()
            self._memo.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def bytes_used(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    def stats(self) -> dict[str, int]:
        with self._lock:
            c = self.stats_counters
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "bytes": sum(e.nbytes for e in self._entries.values()),
                "hits": c.hits,
                "intermediate_hits": c.intermediate_hits,
                "misses": c.misses,
                "admissions": c.admissions,
                "rejections": c.rejections,
                "evictions": c.evictions,
                "invalidations": c.invalidations,
            }


def _score(cost_seconds: float, recurrence: int, nbytes: int) -> float:
    """Benefit density: seconds saved × expected recurrences per byte —
    the result-set analogue of Maxson's acceleration-per-byte scoring."""
    return (max(cost_seconds, 0.0) * max(recurrence, 1)) / max(nbytes, 1)


def _apply_suffix(rows: list[dict], canonical: CanonicalStatement) -> list[dict]:
    """Replay ORDER BY/LIMIT over cached prefix rows with the engine's
    exact semantics: stable right-to-left sorts on
    :func:`~repro.engine.physical._sort_token`, then the limit slice."""
    for name, ascending in reversed(canonical.suffix_sort):
        rows.sort(key=lambda row: _sort_token(row[name]), reverse=not ascending)
    if canonical.suffix_limit is not None:
        rows = rows[: canonical.suffix_limit]
    return rows
