"""Sparser-style raw prefiltering as an engine plan modifier.

Sparser's observation: for highly selective predicates it is cheaper to
probe the *undecoded* JSON bytes than to parse every record. This module
derives conservative raw filters from equality conjuncts of the form
``get_json_object(col, '$.path') = literal`` and installs a prefilter
operator between the scan and the filter, so most records are rejected
before any JSON parsing happens. The exact filter above is preserved, so
false positives of the raw probe are still removed.

This is the ``Spark+Sparser`` configuration used in ablations; it is
independent of (and composable with) Maxson's caching.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..jsonlib.jackson import dumps
from ..jsonlib.jsonpath import Member, parse_path
from ..jsonlib.sparser import FilterCascade, KeyValueFilter
from .batch import ColumnBatch
from .expressions import BinaryOp, Column, Expression, GetJsonObject, Literal
from .physical import ExecState, FilterExec, PhysicalPlan, ScanExec
from .planner import PlannedQuery

__all__ = ["SparserPrefilterExec", "SparserPlanModifier"]


def _render_literal(value: object) -> str | None:
    """The byte pattern a scalar value starts with in JSON text."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, str)):
        return dumps(value)
    # floats have several textual spellings (1.0 vs 1) -> don't probe
    return None


def _split_conjuncts(expr: Expression) -> list[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def derive_cascade(
    condition: Expression, json_columns: set[str]
) -> tuple[str, FilterCascade] | None:
    """Build (column, cascade) from the pushable equality conjuncts."""
    filters = []
    column_name: str | None = None
    for conjunct in _split_conjuncts(condition):
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            continue
        call, literal = conjunct.left, conjunct.right
        if not isinstance(call, GetJsonObject):
            call, literal = conjunct.right, conjunct.left
        if not isinstance(call, GetJsonObject) or not isinstance(literal, Literal):
            continue
        if not isinstance(call.column, Column):
            continue
        bare = call.column.name.split(".")[-1]
        if bare not in json_columns:
            continue
        if column_name is not None and column_name != bare:
            continue  # one probed column per scan keeps this simple
        steps = parse_path(call.path).steps
        if not all(isinstance(step, Member) for step in steps):
            continue
        rendered = _render_literal(literal.value)
        if rendered is None:
            continue
        filters.append(KeyValueFilter(steps[-1].name, rendered))
        column_name = bare
    if not filters or column_name is None:
        return None
    return column_name, FilterCascade(filters)


@dataclass
class SparserPrefilterExec(PhysicalPlan):
    """Drop rows whose raw JSON bytes cannot satisfy the predicate."""

    child: ScanExec
    column: str
    cascade: FilterCascade
    calibration_sample: int = 64
    rows_in: int = 0
    rows_out: int = 0

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def output_names(self) -> set[str]:
        return self.child.output_names()

    def _label(self) -> str:
        probes = ", ".join(f.describe() for f in self.cascade.filters)
        return f"SparserPrefilter {self.column} [{probes}]"

    def execute(self, state: ExecState) -> list[dict]:
        rows = self.child.execute(state)
        started = time.perf_counter()
        sample = [
            row[self.column]
            for row in rows[: self.calibration_sample]
            if isinstance(row.get(self.column), str)
        ]
        self.cascade.calibrate(sample)
        out = []
        for row in rows:
            text = row.get(self.column)
            if not isinstance(text, str) or self.cascade.matches(text):
                out.append(row)
        self.rows_in = len(rows)
        self.rows_out = len(out)
        state.metrics.extra["sparser_seconds"] = (
            state.metrics.extra.get("sparser_seconds", 0.0)
            + time.perf_counter()
            - started
        )
        state.metrics.extra["sparser_rows_dropped"] = (
            state.metrics.extra.get("sparser_rows_dropped", 0.0)
            + len(rows)
            - len(out)
        )
        return out

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        batch = self.child.execute_batch(state)
        started = time.perf_counter()
        if self.column in batch.columns:
            texts = batch.column(self.column)
        else:
            # Row path keeps rows whose probe column is absent
            # (row.get -> None); mirror that.
            texts = [None] * batch.length
        sample = [
            text
            for text in texts[: self.calibration_sample]
            if isinstance(text, str)
        ]
        self.cascade.calibrate(sample)
        keep = [
            i
            for i, text in enumerate(texts)
            if not isinstance(text, str) or self.cascade.matches(text)
        ]
        self.rows_in = batch.length
        self.rows_out = len(keep)
        state.metrics.extra["sparser_seconds"] = (
            state.metrics.extra.get("sparser_seconds", 0.0)
            + time.perf_counter()
            - started
        )
        state.metrics.extra["sparser_rows_dropped"] = (
            state.metrics.extra.get("sparser_rows_dropped", 0.0)
            + batch.length
            - len(keep)
        )
        if len(keep) == batch.length:
            return batch
        return batch.take(keep)


@dataclass
class SparserPlanModifier:
    """Install raw prefilters under filters with probe-able predicates.

    Register on a session with ``session.add_plan_modifier`` — composes
    with Maxson's modifier (run Sparser *after* Maxson so cached scans,
    which no longer carry the JSON column, are naturally skipped).
    """

    json_columns: set[str] = field(default_factory=lambda: {"payload", "doc", "sale_logs"})

    def plan_cache_token(self) -> tuple:
        """Cache-key component: the rewrite is a pure function of the
        plan and the configured probe-able column set."""
        return ("sparser", tuple(sorted(self.json_columns)))

    def modify(self, planned: PlannedQuery, state: ExecState) -> PhysicalPlan:
        plan = planned.physical

        def visit(node: PhysicalPlan) -> PhysicalPlan | None:
            if not isinstance(node, FilterExec):
                return None
            child = node.child
            if type(child) is not ScanExec:
                return None
            derived = derive_cascade(node.condition, self.json_columns)
            if derived is None:
                return None
            column, cascade = derived
            if column not in child.columns:
                return None
            node.child = SparserPrefilterExec(
                child=child, column=column, cascade=cascade
            )
            return None

        return plan.transform_nodes(visit)
