"""Process-pool morsel backend with shared-memory ColumnBatch transport.

The thread backend (:mod:`repro.engine.parallel`) overlaps per-split
*I/O*, but every byte of per-split *CPU* — raw JSON parsing, ORC
decoding, predicate evaluation — still serialises on one core behind
the GIL. :class:`ProcessMorselPool` is a drop-in replacement for the
session's ``ThreadPoolExecutor`` that executes each split's whole
scan→prefilter→filter→project/partial-aggregate pipeline in one of a
persistent pool of **spawned worker processes**, so ``scan_workers``
scales to core count.

Design (DESIGN.md §14):

* **Warm read-only snapshots.** Each worker holds a private replica of
  the coordinator's in-memory file system, catalog and (seeded) fault
  policy. The snapshot ships once per pool (re)build and is invalidated
  by ``catalog.version`` — never re-shipped per split — mirroring
  Presto's worker-side metadata cache. Workers never write, so replicas
  cannot drift inside one version.
* **Typed shared-memory framing.** A split's :class:`ColumnBatch`
  result returns through a ``multiprocessing.shared_memory`` segment:
  ``[8-byte LE header length][JSON header][per-column lanes]`` with
  typed lanes (bool / int64 / float64 / utf-8 string / JSON fallback)
  and per-lane null index lists. Row data is never pickled on the hot
  path; only small control metadata (per-split metrics, fallback flags,
  aggregate partials) crosses the pipe. Column aliasing (several names
  sharing one list) survives the trip, which ``_concat_batches``'s
  identity-based merge depends on.
* **Deterministic adoption + reaping.** The coordinator adopts each
  segment, decodes it and unlinks it in a ``finally`` — completion,
  failure and cancellation all release SHM. Segments are named
  ``mxshm_<coordinator-pid>_…`` so :func:`reap_orphan_segments` at
  server startup can unlink anything left behind by a crashed
  coordinator, mirroring PR 2's orphan-generation recovery.
* **Cooperative cancellation.** ``CancelToken.cancel()`` on the
  coordinator flips one byte in a shared cancel-flag slab; workers poll
  it from the existing ``check()`` sites via :class:`_WorkerCancelToken`.
  Deadlines ship as remaining-seconds at dispatch and are enforced on
  the worker's own monotonic clock.
* **Split-order accounting parity.** Workers execute with
  breaker/resilience stripped from the plan and record per-split cache
  failures into ``scan.failure_log``; the coordinator replays them in
  split order against the real breaker/resilience objects, then merges
  metrics/partials exactly like the thread backend — results are
  bit-identical to serial and thread execution at any worker count.
"""

from __future__ import annotations

import atexit
import dataclasses
import json
import os
import pickle
import queue
import struct
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import get_context, shared_memory

from .batch import ColumnBatch
from .cancel import CancelToken
from .errors import ExecutionError

__all__ = [
    "ProcessMorselPool",
    "reap_orphan_segments",
    "encode_batch",
    "decode_batch",
    "decode_batch_frame",
    "SHM_PREFIX",
]

#: Every segment this module creates starts with this prefix followed by
#: the *coordinator* pid — the reaper keys liveness off that pid.
SHM_PREFIX = "mxshm"

#: Concurrent queries a pool can flag for cancellation at once; queries
#: beyond this simply wait for a slot (they are about to run splits
#: anyway, so the wait is bounded by split execution).
_CANCEL_SLOTS = 512


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def reap_orphan_segments(prefix: str = SHM_PREFIX) -> int:
    """Unlink shared-memory segments abandoned by dead coordinators.

    Mirrors PR 2's orphan-generation recovery: run once at server
    startup. A segment is an orphan iff its embedded coordinator pid is
    no longer alive — segments of live processes (including this one)
    are never touched, so concurrently running servers are safe.
    Returns the number of segments reaped.
    """
    base = "/dev/shm"
    if not os.path.isdir(base):
        return 0
    reaped = 0
    for entry in os.listdir(base):
        if not entry.startswith(prefix + "_"):
            continue
        parts = entry.split("_")
        if len(parts) < 2 or not parts[1].isdigit():
            continue
        if _pid_alive(int(parts[1])):
            continue
        try:
            segment = shared_memory.SharedMemory(name=entry)
        except FileNotFoundError:
            continue
        try:
            segment.close()
            segment.unlink()
            reaped += 1
        except FileNotFoundError:
            pass
    return reaped


# ----------------------------------------------------------------------
# ColumnBatch <-> shared-memory framing
# ----------------------------------------------------------------------
# Lane tags: "b" bool (one byte per row: 0=NULL 1=False 2=True),
# "i" int64, "f" float64 (exact bit round-trip), "s" utf-8 strings with
# 8-byte char-length prefixes, "z" all-NULL, "j" JSON fallback for
# mixed/nested values. "i"/"f"/"s" carry NULLs as an index list in the
# header; "j" round-trips null natively.


def _encode_lane(values: list) -> tuple[str, list[int], bytes]:
    kinds = {type(v) for v in values if v is not None}
    n = len(values)
    if not kinds:
        return "z", [], b""
    if kinds == {bool}:
        return (
            "b",
            [],
            bytes(0 if v is None else (2 if v else 1) for v in values),
        )
    nulls = [i for i, v in enumerate(values) if v is None]
    if kinds == {int} and all(
        v is None or -(1 << 63) <= v < (1 << 63) for v in values
    ):
        data = struct.pack(
            f"<{n}q", *(0 if v is None else v for v in values)
        )
        return "i", nulls, data
    if kinds == {float}:
        data = struct.pack(
            f"<{n}d", *(0.0 if v is None else v for v in values)
        )
        return "f", nulls, data
    if kinds == {str}:
        lengths = struct.pack(
            f"<{n}Q", *(0 if v is None else len(v) for v in values)
        )
        blob = "".join(v for v in values if v is not None).encode("utf-8")
        return "s", nulls, lengths + blob
    data = json.dumps(values, separators=(",", ":")).encode("utf-8")
    return "j", [], data


def _decode_lane(buf, tag: str, offset: int, nbytes: int, nulls: list, n: int):
    if tag == "z":
        return [None] * n
    if tag == "b":
        return [
            None if byte == 0 else byte == 2
            for byte in bytes(buf[offset : offset + n])
        ]
    if tag == "i":
        out = list(struct.unpack_from(f"<{n}q", buf, offset))
    elif tag == "f":
        out = list(struct.unpack_from(f"<{n}d", buf, offset))
    elif tag == "s":
        lengths = struct.unpack_from(f"<{n}Q", buf, offset)
        text = bytes(
            buf[offset + 8 * n : offset + nbytes]
        ).decode("utf-8")
        out = []
        pos = 0
        for length in lengths:
            out.append(text[pos : pos + length])
            pos += length
    elif tag == "j":
        return json.loads(bytes(buf[offset : offset + nbytes]))
    else:  # pragma: no cover - framing version mismatch
        raise ExecutionError(f"unknown SHM lane tag {tag!r}")
    for index in nulls:
        out[index] = None
    return out


def encode_batch(batch: ColumnBatch, trace: dict | None = None) -> bytes:
    """Frame a batch as ``[8B header length][JSON header][lane data]``.

    Names sharing one column list share one lane (identity-deduplicated)
    so alias relationships survive decoding. ``trace`` (a worker span
    subtree from :func:`repro.obs.trace.export_subtree`) rides in the
    header — the "result-segment header frame" of the cross-process
    trace-propagation protocol — so span shipment costs zero extra pipe
    messages and zero extra segments.
    """
    lanes = []
    chunks: list[bytes] = []
    lane_of_identity: dict[int, int] = {}
    column_lane: list[int] = []
    offset = 0
    for name in batch.names:
        column = batch.columns[name]
        index = lane_of_identity.get(id(column))
        if index is None:
            tag, nulls, data = _encode_lane(column)
            index = len(lanes)
            lane_of_identity[id(column)] = index
            lanes.append(
                {"t": tag, "o": offset, "l": len(data), "nulls": nulls}
            )
            chunks.append(data)
            offset += len(data)
        column_lane.append(index)
    payload = {
        "n": batch.length,
        "names": list(batch.names),
        "cols": column_lane,
        "lanes": lanes,
    }
    if trace is not None:
        payload["trace"] = trace
    header = json.dumps(
        payload, separators=(",", ":"), default=str
    ).encode("utf-8")
    return b"".join(
        [struct.pack("<Q", len(header)), header, *chunks]
    )


def decode_batch_frame(buf) -> tuple[ColumnBatch, dict]:
    """Rebuild ``(batch, header extras)`` from an :func:`encode_batch`
    frame; extras currently carry the optional ``trace`` subtree."""
    (header_length,) = struct.unpack_from("<Q", buf, 0)
    header = json.loads(bytes(buf[8 : 8 + header_length]))
    base = 8 + header_length
    n = header["n"]
    lists = [
        _decode_lane(
            buf, lane["t"], base + lane["o"], lane["l"], lane["nulls"], n
        )
        for lane in header["lanes"]
    ]
    names = header["names"]
    columns = {
        name: lists[index] for name, index in zip(names, header["cols"])
    }
    extras = {
        key: value
        for key, value in header.items()
        if key not in ("n", "names", "cols", "lanes")
    }
    return ColumnBatch(names, columns, n), extras


def decode_batch(buf) -> ColumnBatch:
    """Rebuild a :class:`ColumnBatch` from an :func:`encode_batch` frame."""
    batch, _ = decode_batch_frame(buf)
    return batch


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------


class _WorkerCancelToken(CancelToken):
    """Token a worker builds per task: polls the coordinator's shared
    cancel-flag byte inside every existing ``check()`` site, and
    enforces the shipped remaining-deadline on its own clock."""

    def __init__(self, flag_buf, slot: int | None, remaining: float | None):
        super().__init__(deadline_seconds=remaining)
        self._flag_buf = flag_buf
        self._slot = slot

    def check(self) -> None:
        if (
            self._flag_buf is not None
            and self._slot is not None
            and self._flag_buf[self._slot]
        ):
            from .errors import QueryCancelledError

            raise QueryCancelledError(
                "query cancelled: coordinator cancel flag"
            )
        super().check()


class _WorkerEnv:
    """A worker process's warm snapshot: fs/catalog/policy replicas plus
    the parser factories — everything :meth:`ExecState.fork` would give
    a thread worker, rebuilt process-locally once per catalog version."""

    def __init__(self, snapshot: dict):
        from ..storage.fs import _File
        from .catalog import Catalog

        fs_cls = snapshot["fs_class"]
        fs = fs_cls(
            block_size=snapshot["block_size"],
            read_latency_seconds=snapshot["read_latency_seconds"],
        )
        policy_spec = snapshot["policy"]
        if policy_spec is not None:
            policy_cls, policy_kwargs = policy_spec
            # Reconstructing from public fields re-runs __post_init__,
            # re-seeding the RNG: the fault sequence is reproducible
            # per worker, exactly as ISSUE'd fault matrices need.
            fs.policy = policy_cls(**policy_kwargs)
        fs._files = {
            path: _File(data=data, modification_time=mtime)
            for path, (data, mtime) in snapshot["files"].items()
        }
        catalog = Catalog(fs, warehouse_root=snapshot["warehouse_root"])
        for info in snapshot["tables"]:
            catalog._tables[(info.database, info.name)] = info
        catalog._version = snapshot["catalog_version"]
        self.catalog = catalog
        self._parser_factory = snapshot["parser_factory"]
        self._projection_parser_factory = snapshot[
            "projection_parser_factory"
        ]
        self._doc_cache_bytes = snapshot["doc_cache_bytes"]
        self._plan_cache: tuple[bytes, object] | None = None
        flag_name = snapshot["flag_slab"]
        self.flag_buf = None
        self._flag_segment = None
        if flag_name is not None:
            try:
                self._flag_segment = shared_memory.SharedMemory(
                    name=flag_name
                )
                self.flag_buf = self._flag_segment.buf
            except FileNotFoundError:
                self.flag_buf = None

    def context(self):
        from .expressions import EvalContext

        context = EvalContext(parser=self._parser_factory())
        if self._projection_parser_factory is not None:
            context.projection_parser = self._projection_parser_factory()
        if self._doc_cache_bytes != "default":
            context.doc_cache_bytes = self._doc_cache_bytes
        return context

    def plan_for(self, blob: bytes):
        """Unpickle the split's pipeline, memoising the last plan: all
        splits of one query ship identical bytes, so the plan warms on
        the first split and later splits skip the unpickle."""
        cached = self._plan_cache
        if cached is not None and cached[0] == blob:
            return cached[1]
        plan = pickle.loads(blob)
        self._plan_cache = (blob, plan)
        return plan


def _create_segment(name_prefix: str, size: int) -> shared_memory.SharedMemory:
    for attempt in range(64):
        name = f"{name_prefix}{os.getpid()}_{uuid.uuid4().hex[:8]}"
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, size)
            )
        except FileExistsError:
            continue
        # The coordinator owns the segment's lifetime (it unlinks after
        # adoption); keep this worker's resource tracker out of it so
        # worker exit does not double-unlink or warn.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
        return segment
    raise ExecutionError("could not allocate a shared-memory segment name")


def _run_task(env: _WorkerEnv, task: dict) -> dict:
    from .parallel import (
        MorselAggregateExec,
        _fold_context_stats,
    )
    from .physical import ExecState, collect_aggregates

    token = _WorkerCancelToken(
        env.flag_buf, task["slot"], task["remaining"]
    )
    worker = ExecState(
        catalog=env.catalog,
        context=env.context(),
        cancel_token=token,
    )
    tracer = None
    split_span = None
    if task.get("trace"):
        from ..obs.trace import Tracer

        tracer = Tracer(clock=time.perf_counter)
        worker.tracer = tracer
        split_span = tracer.begin(
            "split", backend="process", worker=f"pid-{os.getpid()}"
        )
    plan = env.plan_for(task["plan"])
    scan = plan.pipeline.scan if hasattr(plan, "pipeline") else plan.scan
    failures: list = []
    scan.failure_log = failures
    mode = task["mode"]
    started = time.perf_counter()
    if isinstance(plan, MorselAggregateExec):
        aggregates = collect_aggregates(plan.output)
        payload, fallback = plan._partials(
            worker, task["unit"], mode, aggregates
        )
    else:
        payload, fallback = plan._process(worker, task["unit"], mode)
    _fold_context_stats(worker.metrics, worker.context)
    seconds = time.perf_counter() - started
    tree = None
    if tracer is not None:
        from ..obs.trace import export_subtree

        tracer.end(split_span)
        tree = export_subtree(split_span)
    reply = {
        "fallback": fallback,
        "failures": failures,
        "metrics": worker.metrics,
        "seconds": seconds,
        "shm": None,
        "shm_bytes": 0,
    }
    if isinstance(plan, MorselAggregateExec):
        # Partial aggregates are tiny group->accumulator maps, not
        # ColumnBatches; they travel on the pipe — and so does the span
        # subtree (there is no result segment to carry it).
        reply["kind"] = "agg"
        reply["partials"] = payload
        reply["trace"] = tree
        return reply
    data, prefilter_counts = payload
    if mode == "batch":
        reply["kind"] = "batch"
        batch = data
    else:
        reply["kind"] = "rows"
        names = list(data[0].keys()) if data else []
        batch = ColumnBatch.from_rows(data, names)
    frame = encode_batch(batch, trace=tree)
    segment = _create_segment(task["shm_prefix"], len(frame))
    try:
        segment.buf[: len(frame)] = frame
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    segment_name = segment.name
    segment.close()
    reply["shm"] = segment_name
    reply["shm_bytes"] = len(frame)
    reply["prefilter"] = prefilter_counts
    return reply


def _worker_main(conn) -> None:
    """Entry point of one spawned worker process: a snapshot/task loop."""
    env: _WorkerEnv | None = None
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        kind = message[0]
        try:
            if kind == "exit":
                return
            if kind == "snapshot":
                env = _WorkerEnv(message[1])
                conn.send_bytes(pickle.dumps(("ok", None)))
                continue
            if kind == "task":
                if env is None:
                    raise ExecutionError("worker has no snapshot")
                reply = _run_task(env, message[1])
                conn.send_bytes(pickle.dumps(("ok", reply)))
                continue
            raise ExecutionError(f"unknown worker message {kind!r}")
        except Exception as exc:  # noqa: BLE001 - shipped to coordinator
            try:
                blob = pickle.dumps(("err", exc))
            except Exception:  # noqa: BLE001 - unpicklable exception
                blob = pickle.dumps(
                    ("err", ExecutionError(f"{type(exc).__name__}: {exc}"))
                )
            try:
                conn.send_bytes(blob)
            except (OSError, BrokenPipeError):
                return


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _WorkerHandle:
    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.snapshot_version: int | None = None

    def send(self, blob: bytes) -> None:
        self.conn.send_bytes(blob)

    def recv(self):
        return pickle.loads(self.conn.recv_bytes())

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=2.0)


class ProcessMorselPool:
    """A persistent pool of spawned morsel worker processes.

    Duck-typed against the session's thread pool at the
    :func:`repro.engine.parallel._run_morsels` dispatch point: the
    scheduler detects :meth:`run_morsels` and hands over the whole
    split list plus the (declarative) pipeline instead of a closure.
    """

    def __init__(self, workers: int, snapshot_fn, observer=None):
        self.workers = workers
        self._snapshot_fn = snapshot_fn
        #: Optional callable ``(event: str, **fields)`` notified on
        #: worker lifecycle transitions (spawn/respawn/exit) — the
        #: server wires this into ``system.workers``. Must never raise
        #: into the pool; exceptions are swallowed.
        self._observer = observer
        self._ctx = get_context("spawn")
        self._handles: list[_WorkerHandle] = []
        self._free: queue.Queue[int] = queue.Queue()
        self._dispatch = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="procpool"
        )
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self._snapshot_version: int | None = None
        self._snapshot_blob: bytes | None = None
        self._shm_prefix = f"{SHM_PREFIX}_{os.getpid()}_"
        self._flag_slab: shared_memory.SharedMemory | None = None
        self._flag_slots: queue.Queue[int] = queue.Queue()
        self._live_lock = threading.Lock()
        self._live_segments: dict[str, int] = {}
        atexit.register(self.close)

    # -- lifecycle ------------------------------------------------------
    def _notify(self, event: str, **fields) -> None:
        if self._observer is None:
            return
        try:
            self._observer(event, **fields)
        except Exception:  # noqa: BLE001 - telemetry must not fail the pool
            pass

    def _spawn_worker(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        self._notify("spawn", worker=f"pid-{process.pid}")
        return _WorkerHandle(process, parent_conn)

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise ExecutionError("process morsel pool is closed")
            if self._started:
                return
            self._flag_slab = shared_memory.SharedMemory(
                name=f"{SHM_PREFIX}_{os.getpid()}_flags_{uuid.uuid4().hex[:8]}",
                create=True,
                size=_CANCEL_SLOTS,
            )
            for slot in range(_CANCEL_SLOTS):
                self._flag_slots.put(slot)
            for index in range(self.workers):
                self._handles.append(self._spawn_worker())
                self._free.put(index)
            self._started = True

    def ensure_snapshot(self, version: int) -> None:
        """(Re)build the warm snapshot if the catalog moved on.

        The blob is pickled once here; each worker receives it lazily on
        its next dispatch (per-handle version check), so a refresh never
        blocks behind other queries' in-flight splits.
        """
        self._ensure_started()
        with self._lock:
            if self._snapshot_version == version:
                return
            snapshot = self._snapshot_fn()
            snapshot["flag_slab"] = (
                self._flag_slab.name if self._flag_slab is not None else None
            )
            self._snapshot_blob = pickle.dumps(("snapshot", snapshot))
            self._snapshot_version = version

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
            self._handles = []
        for handle in handles:
            try:
                handle.send(pickle.dumps(("exit",)))
            except (OSError, BrokenPipeError):
                pass
        for handle in handles:
            handle.process.join(timeout=1.0)
            handle.kill()
            self._notify("exit", worker=f"pid-{handle.process.pid}")
        self._dispatch.shutdown(wait=False)
        if self._flag_slab is not None:
            try:
                self._flag_slab.close()
                self._flag_slab.unlink()
            except FileNotFoundError:
                pass
            self._flag_slab = None
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass

    # -- observability --------------------------------------------------
    @property
    def live_shm_bytes(self) -> int:
        """Bytes of result segments currently adopted but not yet
        unlinked (plus the cancel slab) — the watchdog charges these
        against the memory soft limit."""
        with self._live_lock:
            total = sum(self._live_segments.values())
        if self._flag_slab is not None:
            total += _CANCEL_SLOTS
        return total

    def _track_segment(self, name: str, nbytes: int) -> None:
        with self._live_lock:
            self._live_segments[name] = nbytes

    def _untrack_segment(self, name: str) -> None:
        with self._live_lock:
            self._live_segments.pop(name, None)

    # -- execution ------------------------------------------------------
    def run_morsels(self, state, plan, mode: str, units: list) -> list:
        """Execute every unit in worker processes; results in unit order.

        Returns the same ``(payload, fallback, metrics, seconds)``
        tuples the thread path's ``task()`` produces, after replaying
        worker-recorded cache failures against the coordinator plan in
        split order.
        """
        self.ensure_snapshot(state.catalog.version)
        plan_blob = pickle.dumps(_sanitize_plan(plan))
        token = state.cancel_token
        traced = state.tracer is not None
        slot = self._flag_slots.get()
        flag_buf = self._flag_slab.buf
        flag_buf[slot] = 0

        def raise_flag() -> None:
            try:
                flag_buf[slot] = 1
            except (ValueError, IndexError):  # slab closed mid-cancel
                pass

        if token is not None:
            token.on_cancel(raise_flag)
        try:
            futures = [
                self._dispatch.submit(
                    self._run_unit, plan_blob, mode, unit, slot, token, traced
                )
                for unit in units
            ]
            raw_results: list = []
            first_error: BaseException | None = None
            for future in futures:
                if first_error is not None:
                    # Cancel splits not yet started; drain in-flight
                    # ones so no morsel of this query is running when
                    # the error surfaces (and every adopted segment is
                    # unlinked) — but keep completed splits' results so
                    # their cache failures still replay below.
                    if future.cancel():
                        raw_results.append(None)
                        continue
                try:
                    raw_results.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    raw_results.append(None)
                    if first_error is None:
                        first_error = exc
                        # Unstick any worker still mid-split.
                        raise_flag()
        finally:
            if token is not None:
                token.remove_cancel_callback(raise_flag)
            try:
                flag_buf[slot] = 0
            except (ValueError, IndexError):
                pass
            self._flag_slots.put(slot)
        # Replay worker-recorded cache failures in split order before
        # surfacing any error: the thread backend records failures live,
        # so breaker trips / corruption counters must advance for splits
        # that completed even when the query itself errors (e.g. a later
        # split's cancellation or deadline).
        scan = plan.pipeline.scan if hasattr(plan, "pipeline") else plan.scan
        replay = getattr(scan, "replay_cache_failures", None)
        results = []
        for entry in raw_results:
            if entry is None:
                continue
            payload, fallback, metrics, seconds, failures = entry
            if failures and replay is not None:
                replay(failures)
            results.append((payload, fallback, metrics, seconds))
        if first_error is not None:
            # Completed splits' results never reach _settle on this
            # path, so their transport accounting (dispatch overhead,
            # SHM bytes) and span subtrees would vanish — fold the
            # extras into the query's own metrics and graft the spans
            # now, so failed/cancelled/deadline queries account like
            # the thread backend does.
            extra = state.metrics.extra
            for _, _, metrics, _ in results:
                subtree = metrics.extra.pop("span_tree", None)
                for key in ("proc_dispatch_seconds", "shm_bytes"):
                    value = metrics.extra.get(key)
                    if value:
                        extra[key] = extra.get(key, 0) + value
                if traced and isinstance(subtree, dict):
                    state.tracer.graft(subtree)
            raise first_error
        return results

    def _run_unit(self, plan_blob, mode, unit, slot, token, traced=False):
        dispatched = time.perf_counter()
        index = self._free.get()
        # Capture the snapshot (version, blob) pair atomically: a
        # concurrent ensure_snapshot() swaps both under the lock, and
        # stamping the handle with a version other than the one whose
        # blob was actually shipped would mark the worker current while
        # it holds a stale catalog/fs replica.
        with self._lock:
            if self._closed:
                self._free.put(index)
                raise ExecutionError("process morsel pool is closed")
            handle = self._handles[index]
            version = self._snapshot_version
            blob = self._snapshot_blob
        try:
            if handle.snapshot_version != version:
                handle.send(blob)
                kind, detail = handle.recv()
                if kind == "err":
                    raise detail
                handle.snapshot_version = version
            remaining = (
                token.remaining_seconds() if token is not None else None
            )
            handle.send(
                pickle.dumps(
                    (
                        "task",
                        {
                            "plan": plan_blob,
                            "mode": mode,
                            "unit": unit,
                            "slot": slot,
                            "remaining": remaining,
                            "shm_prefix": self._shm_prefix,
                            "trace": traced,
                        },
                    )
                )
            )
            kind, detail = handle.recv()
            if (
                kind == "ok"
                and isinstance(detail, dict)
                and detail.get("shm")
            ):
                # Track the segment while we still hold the handle: the
                # dead-worker sweep only runs while holding this
                # worker's handle, so anything tracked here can never be
                # reaped out from under adoption.
                self._track_segment(detail["shm"], detail["shm_bytes"])
        except (EOFError, OSError, BrokenPipeError):
            replacement = self._respawn(handle)
            with self._lock:
                pool_closed = self._closed
                if not pool_closed:
                    self._handles[index] = replacement
            if pool_closed:
                replacement.kill()
            raise ExecutionError(
                "morsel worker process died mid-split; pool respawned"
            ) from None
        finally:
            self._free.put(index)
        if kind == "err":
            raise detail
        return self._adopt(detail, time.perf_counter() - dispatched)

    def _respawn(self, dead: _WorkerHandle) -> _WorkerHandle:
        pid = dead.process.pid
        dead.kill()
        self._reap_worker_segments(pid)
        self._notify("crash", worker=f"pid-{pid}")
        return self._spawn_worker()

    def _reap_worker_segments(self, pid: int | None) -> int:
        """Unlink result segments a dead worker wrote but never reported.

        A worker that dies after ``_create_segment`` but before replying
        would otherwise orphan the segment until a *future* coordinator's
        startup reaper finds it. Segment names embed the writer's pid
        right after this pool's prefix, so the respawn path sweeps
        exactly that worker's leftovers. Segments already adopted
        (tracked in ``_live_segments``) are skipped — they were tracked
        while the handle was held, before it returned to the free queue.
        """
        base = "/dev/shm"
        if pid is None or not os.path.isdir(base):
            return 0
        prefix = f"{self._shm_prefix}{pid}_"
        with self._live_lock:
            adopted = set(self._live_segments)
        reaped = 0
        for entry in os.listdir(base):
            if not entry.startswith(prefix) or entry in adopted:
                continue
            try:
                segment = shared_memory.SharedMemory(name=entry)
            except FileNotFoundError:
                continue
            try:
                segment.close()
                segment.unlink()
                reaped += 1
            except FileNotFoundError:
                pass
        return reaped

    def _adopt(self, reply: dict, elapsed: float):
        """Adopt the worker's segment into a batch and unlink it — on
        every path, including decode errors."""
        metrics = reply["metrics"]
        fallback = reply["fallback"]
        failures = reply["failures"]
        seconds = reply["seconds"]
        extra = metrics.extra
        extra["proc_dispatch_seconds"] = extra.get(
            "proc_dispatch_seconds", 0.0
        ) + max(0.0, elapsed - seconds)
        if reply["kind"] == "agg":
            groups, representatives, rows_seen, prefilter_counts = reply[
                "partials"
            ]
            payload = (groups, representatives, rows_seen, prefilter_counts)
            tree = reply.get("trace")
            if isinstance(tree, dict):
                extra["span_tree"] = tree
            return payload, fallback, metrics, seconds, failures
        name = reply["shm"]
        nbytes = reply["shm_bytes"]
        # Already tracked by _run_unit (while the worker handle was
        # held); this adoption is the matching untrack.
        try:
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                raise ExecutionError(
                    f"worker result segment {name} vanished before adoption"
                ) from None
            try:
                batch, extras = decode_batch_frame(segment.buf)
            finally:
                segment.close()
                segment.unlink()
        finally:
            self._untrack_segment(name)
        tree = extras.get("trace")
        if isinstance(tree, dict):
            extra["span_tree"] = tree
        extra["shm_bytes"] = extra.get("shm_bytes", 0) + nbytes
        if reply["kind"] == "rows":
            payload = (batch.to_rows(), reply["prefilter"])
        else:
            payload = (batch, reply["prefilter"])
        return payload, fallback, metrics, seconds, failures


def _sanitize_plan(plan):
    """A picklable copy of the pipeline for worker shipment.

    Breaker/resilience hold locks and must act on the coordinator's
    shared instances anyway — workers record per-split failures into
    ``failure_log`` and the coordinator replays them. The coordinator's
    own plan object is never mutated.
    """
    pipeline = plan.pipeline if hasattr(plan, "pipeline") else plan
    scan = pipeline.scan
    if (
        getattr(scan, "breaker", None) is not None
        or getattr(scan, "resilience", None) is not None
    ):
        scan = dataclasses.replace(scan, breaker=None, resilience=None)
    prefilter = pipeline.prefilter
    if prefilter is not None:
        prefilter = dataclasses.replace(prefilter, child=scan)
    pipeline = dataclasses.replace(
        pipeline, scan=scan, prefilter=prefilter
    )
    if hasattr(plan, "pipeline"):
        return dataclasses.replace(plan, pipeline=pipeline)
    return pipeline


def build_snapshot(session) -> dict:
    """The warm read-only worker snapshot for ``session``'s current
    catalog version: file bytes, table metadata, seeded fault-policy
    config and parser factories. Called under the pool's refresh path
    only — never per split."""
    fs = session.fs
    policy = getattr(fs, "policy", None)
    policy_spec = None
    if policy is not None:
        policy_spec = (
            type(policy),
            {
                f.name: getattr(policy, f.name)
                for f in dataclasses.fields(policy)
                if f.name != "counters"
            },
        )
    with fs._lock:
        files = {
            path: (f.data, f.modification_time)
            for path, f in fs._files.items()
        }
    doc_cache_bytes: object = "default"
    if session.cache_ledger.budget is not None:
        from ..jsonlib.doccache import DEFAULT_DOC_CACHE_BYTES

        doc_cache_bytes = min(
            DEFAULT_DOC_CACHE_BYTES, session.cache_ledger.budget
        )
    return {
        "fs_class": type(fs),
        "block_size": fs.block_size,
        "read_latency_seconds": fs.read_latency_seconds,
        "policy": policy_spec,
        "files": files,
        "warehouse_root": session.catalog.warehouse_root,
        "tables": session.catalog.list_tables(None),
        "catalog_version": session.catalog.version,
        "parser_factory": session.parser_factory,
        "projection_parser_factory": session.projection_parser_factory,
        "doc_cache_bytes": doc_cache_bytes,
        "flag_slab": None,  # filled in by the pool
    }
