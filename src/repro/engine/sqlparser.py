"""SQL text → logical plan.

A hand written lexer and recursive-descent parser for the SQL fragment the
paper's workload uses::

    SELECT expr [AS alias], ...
    FROM db.table [alias]
    [JOIN db.table [alias] ON expr] ...
    [WHERE expr]
    [GROUP BY expr, ...]
    [HAVING expr]
    [ORDER BY expr [ASC|DESC], ...]
    [LIMIT n]

Expressions support ``get_json_object``, arithmetic, comparisons,
``AND/OR/NOT``, ``BETWEEN``, ``IN``, ``IS [NOT] NULL``, ``CAST``, the five
standard aggregates, string/number literals and ``*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SqlSyntaxError
from .expressions import (
    AggregateCall,
    Alias,
    Between,
    BinaryOp,
    CastExpr,
    Column,
    Expression,
    GetJsonObject,
    InList,
    Literal,
    UnaryOp,
)
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    SortKey,
)

__all__ = ["parse_sql", "Star"]

_KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "by",
    "having",
    "order",
    "limit",
    "join",
    "inner",
    "on",
    "as",
    "and",
    "or",
    "not",
    "in",
    "between",
    "is",
    "null",
    "asc",
    "desc",
    "cast",
    "true",
    "false",
    "distinct",
}

_AGG_NAMES = {"count", "sum", "avg", "min", "max"}


@dataclass(frozen=True)
class Star(Expression):
    """``SELECT *`` marker; expanded by the planner against the scan schema."""

    def evaluate(self, row, context):  # pragma: no cover - expanded earlier
        raise SqlSyntaxError("'*' must be expanded before evaluation")

    def sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class _Tok:
    kind: str  # 'ident' | 'number' | 'string' | 'punct' | 'eof'
    text: str
    value: object
    pos: int


def _lex(sql: str) -> list[_Tok]:
    tokens: list[_Tok] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\n\r":
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            j = sql.find("\n", i)
            i = n if j == -1 else j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] in "_"):
                j += 1
            word = sql[i:j]
            tokens.append(_Tok("ident", word, word, i))
            i = j
        elif ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            raw = sql[i:j]
            value: object
            if seen_dot or seen_exp:
                value = float(raw)
            else:
                value = int(raw)
            tokens.append(_Tok("number", raw, value, i))
            i = j
        elif ch == "'":
            j = i + 1
            parts: list[str] = []
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            if j >= n:
                raise SqlSyntaxError("unterminated string literal", i)
            tokens.append(_Tok("string", sql[i : j + 1], "".join(parts), i))
            i = j + 1
        else:
            for punct in ("<=", ">=", "!=", "<>"):
                if sql.startswith(punct, i):
                    text = "!=" if punct == "<>" else punct
                    tokens.append(_Tok("punct", text, text, i))
                    i += len(punct)
                    break
            else:
                if ch in "(),.*=+-/<>%":
                    tokens.append(_Tok("punct", ch, ch, i))
                    i += 1
                else:
                    raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(_Tok("eof", "", None, n))
    return tokens


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _lex(sql)
        self.i = 0

    # -- token helpers -------------------------------------------------
    def peek(self) -> _Tok:
        return self.tokens[self.i]

    def next(self) -> _Tok:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == "ident" and tok.text.lower() in words

    def eat_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.eat_keyword(word):
            tok = self.peek()
            raise SqlSyntaxError(f"expected {word.upper()}, got {tok.text!r}", tok.pos)

    def eat_punct(self, text: str) -> bool:
        tok = self.peek()
        if tok.kind == "punct" and tok.text == text:
            self.next()
            return True
        return False

    def expect_punct(self, text: str) -> None:
        if not self.eat_punct(text):
            tok = self.peek()
            raise SqlSyntaxError(f"expected {text!r}, got {tok.text!r}", tok.pos)

    # -- grammar -------------------------------------------------------
    def parse_query(self) -> LogicalPlan:
        self.expect_keyword("select")
        select_list = self.parse_select_list()
        self.expect_keyword("from")
        plan = self.parse_from()
        if self.eat_keyword("where"):
            plan = LogicalFilter(plan, self.parse_expr())
        group_keys: list[Expression] = []
        if self.eat_keyword("group"):
            self.expect_keyword("by")
            group_keys.append(self.parse_expr())
            while self.eat_punct(","):
                group_keys.append(self.parse_expr())
        having: Expression | None = None
        if self.eat_keyword("having"):
            having = self.parse_expr()
        if group_keys or _contains_aggregate(select_list):
            plan = LogicalAggregate(plan, group_keys, select_list)
            if having is not None:
                plan = LogicalFilter(plan, having)
        else:
            if having is not None:
                raise SqlSyntaxError("HAVING without GROUP BY or aggregates")
            plan = LogicalProject(plan, select_list)
        if self.eat_keyword("order"):
            self.expect_keyword("by")
            keys = [self.parse_sort_key()]
            while self.eat_punct(","):
                keys.append(self.parse_sort_key())
            plan = LogicalSort(plan, keys)
        if self.eat_keyword("limit"):
            tok = self.next()
            if tok.kind != "number" or not isinstance(tok.value, int):
                raise SqlSyntaxError("LIMIT expects an integer", tok.pos)
            plan = LogicalLimit(plan, tok.value)
        tok = self.peek()
        if tok.kind != "eof":
            raise SqlSyntaxError(f"unexpected trailing input {tok.text!r}", tok.pos)
        return plan

    def parse_select_list(self) -> list[Expression]:
        items = [self.parse_select_item()]
        while self.eat_punct(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> Expression:
        if self.eat_punct("*"):
            return Star()
        expr = self.parse_expr()
        if self.eat_keyword("as"):
            tok = self.next()
            if tok.kind != "ident":
                raise SqlSyntaxError("expected alias name", tok.pos)
            return Alias(expr, tok.text)
        # Implicit alias: `expr name` (but not before a clause keyword).
        tok = self.peek()
        if tok.kind == "ident" and tok.text.lower() not in _KEYWORDS:
            self.next()
            return Alias(expr, tok.text)
        return expr

    def parse_from(self) -> LogicalPlan:
        plan: LogicalPlan = self.parse_table_ref()
        while self.at_keyword("join", "inner"):
            self.eat_keyword("inner")
            self.expect_keyword("join")
            right = self.parse_table_ref()
            self.expect_keyword("on")
            condition = self.parse_expr()
            plan = LogicalJoin(plan, right, condition)
        return plan

    def parse_table_ref(self) -> LogicalScan:
        tok = self.next()
        if tok.kind != "ident":
            raise SqlSyntaxError("expected table name", tok.pos)
        first = tok.text
        database: str
        table: str
        if self.eat_punct("."):
            tok = self.next()
            if tok.kind != "ident":
                raise SqlSyntaxError("expected table name after '.'", tok.pos)
            database, table = first, tok.text
        else:
            database, table = "default", first
        alias = None
        if self.eat_keyword("as"):
            tok = self.next()
            if tok.kind != "ident":
                raise SqlSyntaxError("expected table alias", tok.pos)
            alias = tok.text
        else:
            tok = self.peek()
            if tok.kind == "ident" and tok.text.lower() not in _KEYWORDS:
                self.next()
                alias = tok.text
        return LogicalScan(database, table, alias)

    def parse_sort_key(self) -> SortKey:
        expr = self.parse_expr()
        if self.eat_keyword("desc"):
            return SortKey(expr, ascending=False)
        self.eat_keyword("asc")
        return SortKey(expr, ascending=True)

    # -- expressions (precedence climbing) -----------------------------
    def parse_expr(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.eat_keyword("or"):
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.eat_keyword("and"):
            left = BinaryOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.eat_keyword("not"):
            return UnaryOp("not", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        left = self.parse_additive()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in ("=", "!=", "<", "<=", ">", ">="):
            self.next()
            return BinaryOp(tok.text, left, self.parse_additive())
        if self.at_keyword("between"):
            self.next()
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            return Between(left, low, high)
        if self.at_keyword("in"):
            self.next()
            self.expect_punct("(")
            options = [self.parse_expr()]
            while self.eat_punct(","):
                options.append(self.parse_expr())
            self.expect_punct(")")
            return InList(left, tuple(options))
        if self.at_keyword("is"):
            self.next()
            negated = self.eat_keyword("not")
            self.expect_keyword("null")
            return UnaryOp("is not null" if negated else "is null", left)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            tok = self.peek()
            if tok.kind == "punct" and tok.text in ("+", "-"):
                self.next()
                left = BinaryOp(tok.text, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind == "punct" and tok.text in ("*", "/", "%"):
                self.next()
                left = BinaryOp(tok.text, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expression:
        if self.eat_punct("-"):
            return UnaryOp("neg", self.parse_unary())
        self.eat_punct("+")
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        tok = self.peek()
        if tok.kind == "number":
            self.next()
            return Literal(tok.value)
        if tok.kind == "string":
            self.next()
            return Literal(tok.value)
        if self.eat_punct("("):
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if tok.kind == "ident":
            lowered = tok.text.lower()
            if lowered == "null":
                self.next()
                return Literal(None)
            if lowered == "true":
                self.next()
                return Literal(True)
            if lowered == "false":
                self.next()
                return Literal(False)
            if lowered == "cast":
                return self.parse_cast()
            if lowered in ("get_json_object", "get_xml_object"):
                return self.parse_extraction(lowered)
            if lowered in _AGG_NAMES and self._lookahead_is_call():
                return self.parse_aggregate(lowered)
            if self._lookahead_is_call():
                from .functions import FunctionCall, is_scalar_function

                if is_scalar_function(lowered):
                    return self.parse_scalar_function(lowered)
                raise SqlSyntaxError(f"unknown function {tok.text!r}", tok.pos)
            return self.parse_column_ref()
        raise SqlSyntaxError(f"unexpected token {tok.text!r}", tok.pos)

    def _lookahead_is_call(self) -> bool:
        nxt = self.tokens[self.i + 1]
        return nxt.kind == "punct" and nxt.text == "("

    def parse_cast(self) -> Expression:
        self.next()  # cast
        self.expect_punct("(")
        child = self.parse_expr()
        self.expect_keyword("as")
        tok = self.next()
        if tok.kind != "ident":
            raise SqlSyntaxError("expected type name in CAST", tok.pos)
        target = {
            "int": "int",
            "bigint": "int",
            "integer": "int",
            "double": "double",
            "float": "double",
            "string": "string",
            "varchar": "string",
            "boolean": "boolean",
        }.get(tok.text.lower())
        if target is None:
            raise SqlSyntaxError(f"unsupported CAST target {tok.text!r}", tok.pos)
        self.expect_punct(")")
        return CastExpr(child, target)

    def parse_extraction(self, function_name: str) -> Expression:
        self.next()  # function name
        self.expect_punct("(")
        column = self.parse_expr()
        self.expect_punct(",")
        tok = self.next()
        if tok.kind != "string":
            raise SqlSyntaxError(
                f"{function_name}'s second argument must be a string "
                "literal path", tok.pos
            )
        self.expect_punct(")")
        if function_name == "get_xml_object":
            from .expressions import GetXmlObject

            return GetXmlObject(column, tok.value)
        return GetJsonObject(column, tok.value)

    def parse_scalar_function(self, name: str) -> Expression:
        from .functions import FunctionCall

        self.next()  # function name
        self.expect_punct("(")
        arguments = [self.parse_expr()]
        while self.eat_punct(","):
            arguments.append(self.parse_expr())
        self.expect_punct(")")
        try:
            return FunctionCall(name, tuple(arguments))
        except Exception as exc:
            raise SqlSyntaxError(str(exc)) from exc

    def parse_aggregate(self, func: str) -> Expression:
        self.next()  # function name
        self.expect_punct("(")
        distinct = self.eat_keyword("distinct")
        if self.eat_punct("*"):
            if func != "count":
                raise SqlSyntaxError(f"{func}(*) is not valid")
            argument: Expression | None = None
        else:
            argument = self.parse_expr()
        self.expect_punct(")")
        return AggregateCall(func, argument, distinct)

    def parse_column_ref(self) -> Expression:
        tok = self.next()
        name = tok.text
        if self.eat_punct("."):
            nxt = self.next()
            if nxt.kind != "ident":
                raise SqlSyntaxError("expected column after '.'", nxt.pos)
            name = f"{name}.{nxt.text}"
        return Column(name)


def _contains_aggregate(expressions: list[Expression]) -> bool:
    from .expressions import walk

    for expr in expressions:
        if isinstance(expr, Star):
            continue
        for node in walk(expr):
            if isinstance(node, AggregateCall):
                return True
    return False


def parse_sql(sql: str) -> LogicalPlan:
    """Parse a single SELECT statement into a logical plan."""
    return _Parser(sql).parse_query()
