"""Recurring-query plan cache.

The paper's trace analysis (§III) found 82% of raw-data queries recur
daily or weekly — the same SQL text arriving again and again. Planning
is cheap relative to scanning, but it is pure overhead on every
recurrence, and under Maxson it repeats cache-registry lookups and plan
rewrites too. This module caches the finished
:class:`~repro.engine.planner.PlannedQuery` (post plan-modifier, post
morsel rewrite, with its compiled batch closures) keyed by:

* a **normalized SQL fingerprint** — whitespace collapsed outside
  single-quoted strings; case is preserved because identifiers are
  case-sensitive in the catalog;
* the **catalog version** — a monotonic counter bumped by every DDL and
  data append, so schema changes *and* cache-generation swaps (which
  create/drop generation tables) invalidate stale plans;
* one **token per registered plan modifier** — Maxson's modifier derives
  its token from the identity of the live cache registry and the
  circuit-breaker epoch, so registry swaps and quarantine transitions
  re-plan even if the catalog were untouched.

Entries are LRU-evicted beyond ``capacity``. Lookups and stores are
lock-guarded (the server shares one session across request threads).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

from .metrics import QueryMetrics
from .planner import PlannedQuery

__all__ = ["CachedPlan", "PlanCache", "fingerprint"]

_QUOTED = re.compile(r"'(?:[^']|'')*'")
_WS = re.compile(r"\s+")


def fingerprint(sql: str) -> str:
    """Normalized fingerprint of a SQL text.

    Collapses runs of whitespace to single spaces *outside* quoted
    string literals (whitespace inside ``'...'`` is data) and strips the
    ends, so reformatted recurrences of the same query share a plan.
    """
    pieces: list[str] = []
    last = 0
    for match in _QUOTED.finditer(sql):
        pieces.append(_WS.sub(" ", sql[last : match.start()]))
        pieces.append(match.group(0))
        last = match.end()
    pieces.append(_WS.sub(" ", sql[last:]))
    return "".join(pieces).strip()


@dataclass
class CachedPlan:
    """A reusable plan plus the plan-time metric effects to replay.

    Plan modifiers count plan-time events (Maxson's registry misses land
    in ``cache_misses`` during ``modify``); replaying the snapshot on a
    hit keeps a cached query's metrics identical to a re-planned one.
    """

    planned: PlannedQuery
    planned_metrics: QueryMetrics


class PlanCache:
    """Thread-safe LRU cache of :class:`CachedPlan` entries."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: dict[tuple, CachedPlan] = {}
        self._lock = threading.Lock()

    def get(self, key: tuple) -> CachedPlan | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            # Refresh recency: dicts iterate oldest-first.
            self._entries[key] = self._entries.pop(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, entry: CachedPlan) -> None:
        with self._lock:
            if key in self._entries:
                self._entries[key] = entry
                return
            while self._entries and len(self._entries) >= self.capacity:
                self._entries.pop(next(iter(self._entries)))
                self.evictions += 1
            if self.capacity > 0:
                self._entries[key] = entry

    def clear(self) -> None:
        """Drop every entry (explicit invalidation, e.g. a generation
        swap or a plan-modifier change)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
