"""Recurring-query plan cache.

The paper's trace analysis (§III) found 82% of raw-data queries recur
daily or weekly — the same SQL text arriving again and again. Planning
is cheap relative to scanning, but it is pure overhead on every
recurrence, and under Maxson it repeats cache-registry lookups and plan
rewrites too. This module caches the finished
:class:`~repro.engine.planner.PlannedQuery` (post plan-modifier, post
morsel rewrite, with its compiled batch closures) keyed by:

* a **normalized SQL fingerprint** — whitespace collapsed and keywords
  and identifiers case-folded outside single-quoted strings (SparkSQL
  resolves identifiers case-insensitively, and the paper's recurring
  queries arrive with arbitrary keyword casing); text inside ``'...'``
  is data and is left byte-exact;
* the **catalog version** — a monotonic counter bumped by every DDL and
  data append, so schema changes *and* cache-generation swaps (which
  create/drop generation tables) invalidate stale plans;
* one **token per registered plan modifier** — Maxson's modifier derives
  its token from the identity of the live cache registry and the
  circuit-breaker epoch, so registry swaps and quarantine transitions
  re-plan even if the catalog were untouched.

Entries are LRU-evicted beyond ``capacity`` and, when the session runs
under a unified :class:`~repro.engine.cachebudget.CacheLedger`, beyond
the shared byte budget too. Lookups and stores are lock-guarded (the
server shares one session across request threads).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

from .cachebudget import CacheLedger
from .metrics import QueryMetrics
from .planner import PlannedQuery

__all__ = ["CachedPlan", "PlanCache", "fingerprint", "split_quoted"]

_QUOTED = re.compile(r"'(?:[^']|'')*'")
_WS = re.compile(r"\s+")


def split_quoted(sql: str):
    """Tokenize ``sql`` into ``(is_literal, text)`` segments.

    Splits on single-quoted string literals (``''`` escapes included),
    so callers can normalize code without touching data. Shared by
    :func:`fingerprint` and the result-cache canonicalizer
    (:mod:`repro.engine.resultcache`).
    """
    last = 0
    for match in _QUOTED.finditer(sql):
        if match.start() > last:
            yield False, sql[last : match.start()]
        yield True, match.group(0)
        last = match.end()
    if last < len(sql):
        yield False, sql[last:]


def fingerprint(sql: str) -> str:
    """Normalized fingerprint of a SQL text.

    Outside quoted string literals, collapses runs of whitespace to
    single spaces and folds keywords and identifiers to lower case
    (SparkSQL resolves identifiers case-insensitively — see the
    planner's identifier resolution pass — and keyword casing never
    changes a query's meaning). Text inside ``'...'`` is data and stays
    byte-exact. Reformatted or recased recurrences of the same query
    therefore share one plan.
    """
    pieces: list[str] = []
    for is_literal, segment in split_quoted(sql):
        if is_literal:
            pieces.append(segment)
        else:
            pieces.append(_WS.sub(" ", segment).lower())
    return "".join(pieces).strip()


@dataclass
class CachedPlan:
    """A reusable plan plus the plan-time metric effects to replay.

    Plan modifiers count plan-time events (Maxson's registry misses land
    in ``cache_misses`` during ``modify``); replaying the snapshot on a
    hit keeps a cached query's metrics identical to a re-planned one.
    """

    planned: PlannedQuery
    planned_metrics: QueryMetrics


#: Flat per-entry overhead estimate for a cached plan: operator objects,
#: compiled batch closures and the metrics snapshot. Plans are small and
#: roughly uniform, so a constant plus the fingerprint length is enough
#: for ledger purposes — the point is that many cached plans show up as
#: real bytes against the shared budget, not byte-exact accounting.
_PLAN_ENTRY_OVERHEAD = 4096


def _plan_entry_bytes(key: tuple) -> int:
    text = key[0] if key and isinstance(key[0], str) else ""
    return _PLAN_ENTRY_OVERHEAD + len(text)


class PlanCache:
    """Thread-safe LRU cache of :class:`CachedPlan` entries.

    When constructed with a :class:`CacheLedger`, every entry charges an
    estimated byte cost to the ``plan`` tier, and stores additionally
    evict LRU entries while the ledger is over its shared budget — the
    plan cache yields its own bytes rather than push the unified total
    over the limit.
    """

    def __init__(self, capacity: int, ledger: CacheLedger | None = None) -> None:
        self.capacity = capacity
        self.ledger = ledger
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: dict[tuple, CachedPlan] = {}
        self._charges: dict[tuple, int] = {}
        self._lock = threading.Lock()

    def _evict_locked(self, key: tuple) -> None:
        self._entries.pop(key)
        if self.ledger is not None:
            self.ledger.release("plan", self._charges.pop(key, 0))
        else:
            self._charges.pop(key, None)

    def get(self, key: tuple) -> CachedPlan | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            # Refresh recency: dicts iterate oldest-first.
            self._entries[key] = self._entries.pop(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, entry: CachedPlan) -> None:
        with self._lock:
            if key in self._entries:
                self._entries[key] = entry
                return
            cost = _plan_entry_bytes(key)
            while self._entries and (
                len(self._entries) >= self.capacity
                or (self.ledger is not None and self.ledger.over_budget(cost))
            ):
                self._evict_locked(next(iter(self._entries)))
                self.evictions += 1
            if self.capacity <= 0:
                return
            if self.ledger is not None and self.ledger.over_budget(cost):
                # Other tiers already fill the budget: skip the store.
                return
            self._entries[key] = entry
            self._charges[key] = cost
            if self.ledger is not None:
                self.ledger.charge("plan", cost)

    def shrink_to_bytes(self, target_bytes: int) -> int:
        """Evict LRU entries until the plan tier fits ``target_bytes``.

        Returns bytes released. Called by the server's memory-pressure
        watchdog after the result tier has been shrunk.
        """
        released = 0
        with self._lock:
            used = sum(self._charges.values())
            while self._entries and used > target_bytes:
                key = next(iter(self._entries))
                charge = self._charges.get(key, 0)
                self._evict_locked(key)
                self.evictions += 1
                used -= charge
                released += charge
        return released

    def clear(self) -> None:
        """Drop every entry (explicit invalidation, e.g. a generation
        swap or a plan-modifier change)."""
        with self._lock:
            self.invalidations += len(self._entries)
            if self.ledger is not None:
                self.ledger.release("plan", sum(self._charges.values()))
            self._entries.clear()
            self._charges.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def bytes_used(self) -> int:
        with self._lock:
            return sum(self._charges.values())

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
