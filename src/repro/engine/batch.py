"""Vectorized (batch) execution: column batches and compiled expressions.

The row interpreter (:mod:`repro.engine.expressions` +
:mod:`repro.engine.physical`) walks the expression tree once per row —
which re-parses the same JSON document once per ``get_json_object`` node
per row, exactly the duplicate-parsing pathology Maxson exists to remove.
The batch path fixes the shape of the loop:

* Operators exchange :class:`ColumnBatch` — parallel value lists keyed by
  column name — instead of lists of per-row dicts.
* :class:`BatchCompiler` lowers each :class:`~repro.engine.expressions.
  Expression` to a closure over whole columns (a
  :class:`CompiledExpression`). Scalar semantics come from the *same*
  kernel functions the row interpreter calls (``_apply_arith`` etc.), so
  the two paths cannot drift apart.
* Extraction calls route through the context's vectorized
  ``get_json_objects`` / ``get_xml_objects``, which share one parsed
  document per distinct text via :class:`~repro.jsonlib.doccache.
  DocumentCache` — parse-once sharing across every expression in the
  query.
* The compiler memoises by expression *equality* (all expression nodes
  are frozen dataclasses), which is the engine's common-subexpression
  elimination: two textually identical ``get_json_object`` calls compile
  to one node and evaluate once per batch. Re-served results are counted
  into ``QueryMetrics.duplicate_extractions_eliminated``.

The fallback contract: anything the compiler does not know how to
vectorize lowers to a closure that runs the row interpreter over
``batch.rows()``. Batch mode is therefore never less *capable* than row
mode — only faster where vectorized — and every query can still be
forced down the pure row path via ``Session(execution_mode="row")``.
"""

from __future__ import annotations

import threading

from .errors import ExecutionError
from .expressions import (
    Alias,
    Between,
    BinaryOp,
    CachedField,
    CastExpr,
    Column,
    EvalContext,
    Expression,
    ExtractionCall,
    GetJsonObject,
    GetXmlObject,
    InList,
    Literal,
    UnaryOp,
    _apply_arith,
    _apply_cast,
    _apply_unary,
    _between_result,
    _combine_and,
    _combine_or,
    _COMPARE,
    _in_list_result,
    _LOGIC,
    _null_safe_compare,
    walk,
)

__all__ = [
    "ColumnBatch",
    "CompiledExpression",
    "BatchCompiler",
    "ExpressionAnalysis",
]


class ExpressionAnalysis:
    """Immutable per-query expression facts, shared across worker forks.

    Every morsel fork builds its own :class:`BatchCompiler` (closures
    capture the fork's private context, and per-batch identity caches
    must never be shared between concurrently executing splits), but the
    *analysis* of an expression tree — today, its extraction-call count
    — is a pure function of the frozen expression and identical in every
    fork. The coordinator's ``ExecState`` owns one instance and hands it
    read-only to each fork, so a query with N splits walks each
    expression tree once instead of N times.
    """

    __slots__ = ("_extractions", "_lock")

    def __init__(self) -> None:
        self._extractions: dict[Expression, int] = {}
        self._lock = threading.Lock()

    def extraction_count(self, expr: Expression) -> int:
        table = self._extractions
        try:
            cached = table.get(expr)
            hashable = True
        except TypeError:  # unhashable payload (e.g. Literal over a list)
            cached = None
            hashable = False
        if cached is not None:
            return cached
        count = sum(
            1 for node in walk(expr) if isinstance(node, ExtractionCall)
        )
        if hashable:
            with self._lock:
                table[expr] = count
        return count


class ColumnBatch:
    """A horizontal slice of rows stored as parallel columns.

    ``names`` preserves column order (and may alias the same underlying
    list under two names — scans expose ``col`` and ``alias.col`` without
    copying). ``rows()`` materialises per-row dict views lazily for the
    row-interpreter fallback and is cached: repeated fallbacks on the
    same batch pay the conversion once.
    """

    __slots__ = ("names", "columns", "length", "origin", "_rows")

    def __init__(self, names, columns: dict, length: int) -> None:
        self.names = tuple(names)
        self.columns = columns
        self.length = length
        #: ``(parent_batch, indices)`` when this batch was ``take``n from
        #: another — the lineage CompiledExpression uses to re-serve
        #: cached results across a filter instead of re-evaluating.
        self.origin: tuple["ColumnBatch", list[int]] | None = None
        self._rows: list[dict] | None = None

    @classmethod
    def from_rows(cls, rows: list[dict], names=None) -> "ColumnBatch":
        """Build a batch from row dicts (the row-path bridge).

        ``names`` must be given when ``rows`` may be empty, otherwise the
        column set would be lost and downstream lookups would diverge
        from row-path behaviour.
        """
        if names is None:
            names = tuple(rows[0]) if rows else ()
        else:
            names = tuple(names)
        columns: dict[str, list] = {name: [] for name in names}
        for row in rows:
            for name in names:
                columns[name].append(row[name])
        return cls(names, columns, len(rows))

    def column(self, name: str) -> list:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(
                f"column {name!r} not found in row; have {sorted(set(self.names))}"
            ) from None

    def rows(self) -> list[dict]:
        """Cached per-row dict views (for the row-interpreter fallback)."""
        if self._rows is None:
            names = self.names
            if not names:
                self._rows = [{} for _ in range(self.length)]
            else:
                series = [self.columns[name] for name in names]
                self._rows = [
                    dict(zip(names, values)) for values in zip(*series)
                ]
        return self._rows

    def row(self, index: int) -> dict:
        return self.rows()[index]

    def to_rows(self) -> list[dict]:
        """Fresh row dicts (callers may mutate them freely)."""
        return [dict(row) for row in self.rows()]

    def take(self, indices) -> "ColumnBatch":
        """A new batch holding the given row indices, in order.

        Columns aliased to the same list stay aliased in the result.
        """
        indices = list(indices)
        copies: dict[int, list] = {}
        taken: dict[str, list] = {}
        for name in self.names:
            source = self.columns[name]
            key = id(source)
            copy = copies.get(key)
            if copy is None:
                copy = copies[key] = [source[i] for i in indices]
            taken[name] = copy
        batch = ColumnBatch(self.names, taken, len(indices))
        batch.origin = (self, indices)
        return batch

    def __len__(self) -> int:
        return self.length


class CompiledExpression:
    """A batch-lowered expression: ``evaluate(batch) -> list`` of values.

    Results are cached per batch (by identity, holding a strong
    reference): when operator trees share a compiled node — the CSE case
    — the second evaluation on the same batch is served from cache.
    The cache follows ``take`` lineage: a batch filtered down from the
    last-evaluated one gathers the cached values by index (expressions
    are pure, so the surviving rows' values are unchanged), which keeps
    CSE alive across a selective filter — e.g. a predicate's extraction
    re-used in the projection. Every re-served extraction is counted
    into ``QueryMetrics.duplicate_extractions_eliminated``.
    """

    __slots__ = ("fn", "extractions", "compiler", "_last_batch", "_last_result")

    def __init__(self, fn, extractions: int, compiler: "BatchCompiler") -> None:
        self.fn = fn
        self.extractions = extractions
        self.compiler = compiler
        self._last_batch: ColumnBatch | None = None
        self._last_result: list | None = None

    def evaluate(self, batch: ColumnBatch) -> list:
        if self._last_batch is batch:
            self._count_eliminated(batch.length)
            return self._last_result
        origin = batch.origin
        if origin is not None and origin[0] is self._last_batch:
            cached = self._last_result
            result = [cached[i] for i in origin[1]]
            self._count_eliminated(batch.length)
        else:
            result = self.fn(batch)
        self._last_batch = batch
        self._last_result = result
        return result

    def _count_eliminated(self, length: int) -> None:
        metrics = self.compiler.metrics
        if metrics is not None and self.extractions:
            metrics.duplicate_extractions_eliminated += (
                self.extractions * length
            )


class BatchCompiler:
    """Lower expression trees to column closures, memoised by equality.

    One compiler serves a whole query execution, so identical expression
    subtrees — wherever they occur in the plan — compile to the *same*
    :class:`CompiledExpression` (expression nodes are frozen dataclasses
    and compare by value). That sharing is the engine's
    common-subexpression elimination.
    """

    def __init__(self, context: EvalContext, metrics=None, analysis=None) -> None:
        self.context = context
        self.metrics = metrics
        #: Shared read-only :class:`ExpressionAnalysis` (morsel forks of
        #: one query reuse the coordinator's); private when unshared.
        self.analysis = analysis if analysis is not None else ExpressionAnalysis()
        self._memo: dict[Expression, CompiledExpression] = {}

    def compile(self, expr: Expression) -> CompiledExpression:
        memo = self._memo
        try:
            node = memo.get(expr)
        except TypeError:  # unhashable payload (e.g. Literal over a list)
            return self._lower(expr)
        if node is not None:
            return node
        node = self._lower(expr)
        try:
            memo[expr] = node
        except TypeError:
            pass
        return node

    def _lower(self, expr: Expression) -> CompiledExpression:
        fn = self._lower_fn(expr)
        if fn is None:
            fn = self._fallback(expr)
        extractions = self.analysis.extraction_count(expr)
        return CompiledExpression(fn, extractions, self)

    def _fallback(self, expr: Expression):
        """Row-interpreter escape hatch — the parity guarantee."""
        context = self.context
        return lambda batch: [expr.evaluate(row, context) for row in batch.rows()]

    def _lower_fn(self, expr: Expression):
        context = self.context
        if isinstance(expr, Literal):
            value = expr.value
            return lambda batch: [value] * batch.length
        if isinstance(expr, Column):
            name = expr.name
            return lambda batch: batch.column(name)
        if isinstance(expr, CachedField):
            key = expr.env_key

            def cached_field(batch: ColumnBatch) -> list:
                try:
                    return batch.columns[key]
                except KeyError:
                    raise ExecutionError(
                        f"cached field {key!r} missing from stitched row; "
                        "Value Combiner misconfigured"
                    ) from None

            return cached_field
        if isinstance(expr, Alias):
            child = self.compile(expr.child)
            return child.evaluate
        if isinstance(expr, GetJsonObject):
            column = self.compile(expr.column)
            path = expr.path
            return lambda batch: context.get_json_objects(
                column.evaluate(batch), path
            )
        if isinstance(expr, GetXmlObject):
            column = self.compile(expr.column)
            path = expr.path
            return lambda batch: context.get_xml_objects(
                column.evaluate(batch), path
            )
        if isinstance(expr, BinaryOp):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            op = expr.op
            if op in _LOGIC:
                return self._lower_logic(op, left, right)
            if op in _COMPARE:
                return lambda batch: [
                    _null_safe_compare(op, a, b)
                    for a, b in zip(left.evaluate(batch), right.evaluate(batch))
                ]
            return lambda batch: [
                _apply_arith(op, a, b)
                for a, b in zip(left.evaluate(batch), right.evaluate(batch))
            ]
        if isinstance(expr, UnaryOp):
            child = self.compile(expr.child)
            op = expr.op
            return lambda batch: [
                _apply_unary(op, value) for value in child.evaluate(batch)
            ]
        if isinstance(expr, CastExpr):
            child = self.compile(expr.child)
            target = expr.target
            return lambda batch: [
                _apply_cast(target, value) for value in child.evaluate(batch)
            ]
        if isinstance(expr, InList):
            if all(isinstance(option, Literal) for option in expr.options):
                child = self.compile(expr.child)
                options = tuple(option.value for option in expr.options)
                return lambda batch: [
                    _in_list_result(value, options)
                    for value in child.evaluate(batch)
                ]
            # Non-literal options must keep the interpreter's lazy,
            # in-order option evaluation; fall back whole-node.
            return None
        if isinstance(expr, Between):
            child = self.compile(expr.child)
            low = self.compile(expr.low)
            high = self.compile(expr.high)
            return lambda batch: [
                _between_result(value, lo, hi)
                for value, lo, hi in zip(
                    child.evaluate(batch),
                    low.evaluate(batch),
                    high.evaluate(batch),
                )
            ]
        return None  # unknown node type: row fallback

    def _lower_logic(self, op: str, left: CompiledExpression,
                     right: CompiledExpression):
        """AND/OR with batch-level short-circuiting.

        The row interpreter never evaluates the right operand on rows the
        left operand decides (False for AND, True for OR). The batch form
        preserves that: the right side is evaluated only on the sub-batch
        of undecided rows, so errors and parse costs it would have
        skipped row-wise stay skipped batch-wise.
        """
        combine = _combine_and if op == "and" else _combine_or
        decided = False if op == "and" else True

        def logic(batch: ColumnBatch) -> list:
            left_values = left.evaluate(batch)
            pending = [
                i for i, value in enumerate(left_values) if value is not decided
            ]
            if not pending:
                return [decided] * batch.length
            if len(pending) == batch.length:
                right_values = right.evaluate(batch)
                return [
                    combine(a, b) for a, b in zip(left_values, right_values)
                ]
            out = [decided] * batch.length
            sub = batch.take(pending)
            right_values = right.evaluate(sub)
            for i, value in zip(pending, right_values):
                out[i] = combine(left_values[i], value)
            return out

        return logic
