"""Cooperative cancellation tokens for query execution.

A :class:`CancelToken` is created per query (by the session or the
server) and threaded through the morsel scheduler via ``ExecState``.
Operators call :meth:`CancelToken.check` at split/batch boundaries and
inside raw-parse fallback row loops; the first check after the deadline
passes (or after :meth:`CancelToken.cancel`) raises, unwinding the
worker without producing partial rows.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from .errors import DeadlineExceededError, QueryCancelledError

__all__ = ["CancelToken"]


class CancelToken:
    """Thread-safe cooperative cancellation flag with an optional deadline.

    The deadline is an absolute instant on the token's monotonic clock;
    every holder of the token (coordinator and morsel workers) observes
    the same cutoff. ``check()`` is designed to be cheap enough to call
    at per-split and per-batch granularity.
    """

    __slots__ = (
        "_clock",
        "_deadline",
        "_cancelled",
        "_reason",
        "_lock",
        "_callbacks",
        "checks",
    )

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._deadline: Optional[float] = (
            clock() + deadline_seconds if deadline_seconds is not None else None
        )
        self._cancelled = False
        self._reason = ""
        self._lock = threading.Lock()
        self._callbacks: list[Callable[[], None]] = []
        self.checks = 0

    @classmethod
    def with_deadline_ms(
        cls, deadline_ms: Optional[float], clock: Callable[[], float] = time.monotonic
    ) -> "CancelToken":
        seconds = deadline_ms / 1000.0 if deadline_ms is not None else None
        return cls(deadline_seconds=seconds, clock=clock)

    @property
    def deadline(self) -> Optional[float]:
        """Absolute deadline on the token's monotonic clock, if any."""
        return self._deadline

    @property
    def reason(self) -> str:
        return self._reason

    def cancel(self, reason: str = "cancelled") -> None:
        with self._lock:
            if self._cancelled:
                return
            self._cancelled = True
            self._reason = reason
            callbacks = list(self._callbacks)
        # Outside the lock: a callback may itself touch the token.
        for callback in callbacks:
            callback()

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run once when :meth:`cancel` fires.

        The process-pool backend uses this to mirror a coordinator-side
        cancel into the shared-memory flag its workers poll. If the
        token is already cancelled, the callback runs immediately.
        Deadline expiry does *not* invoke callbacks — deadlines are
        shipped to workers and enforced on their own clocks.
        """
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()

    def remove_cancel_callback(self, callback: Callable[[], None]) -> None:
        """Deregister a callback; a no-op if absent (or already fired)."""
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def tighten_deadline(self, deadline_seconds: float) -> None:
        """Apply a deadline ``deadline_seconds`` from now; earliest wins."""
        candidate = self._clock() + deadline_seconds
        with self._lock:
            if self._deadline is None or candidate < self._deadline:
                self._deadline = candidate

    @property
    def deadline_exceeded(self) -> bool:
        deadline = self._deadline
        return deadline is not None and self._clock() >= deadline

    @property
    def cancelled(self) -> bool:
        return self._cancelled or self.deadline_exceeded

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (<= 0 when already past); None if unset."""
        deadline = self._deadline
        if deadline is None:
            return None
        return deadline - self._clock()

    def check(self) -> None:
        """Raise if cancelled. Cheap; safe to call per split/batch."""
        self.checks += 1
        if self._cancelled:
            raise QueryCancelledError(f"query cancelled: {self._reason or 'cancelled'}")
        deadline = self._deadline
        if deadline is not None and self._clock() >= deadline:
            raise DeadlineExceededError("query deadline exceeded")
