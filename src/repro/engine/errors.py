"""Error types raised by the query engine."""

from __future__ import annotations

__all__ = [
    "EngineError",
    "SqlSyntaxError",
    "PlanError",
    "CatalogError",
    "ExecutionError",
    "QueryCancelledError",
    "DeadlineExceededError",
]


class EngineError(Exception):
    """Base class for engine failures."""


class SqlSyntaxError(EngineError):
    """SQL text could not be parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        self.position = position
        if position >= 0:
            message = f"{message} (near offset {position})"
        super().__init__(message)


class PlanError(EngineError):
    """Logical or physical planning failure (unknown column, bad types...)."""


class CatalogError(EngineError):
    """Catalog lookup or mutation failure."""


class ExecutionError(EngineError):
    """Runtime failure while executing a physical plan."""


class QueryCancelledError(EngineError):
    """The query was cooperatively cancelled before completion.

    Deliberately NOT a subclass of :class:`ExecutionError`: cancellation
    must never be absorbed by degraded-mode fallbacks or counted against
    the cache-table circuit breaker.
    """


class DeadlineExceededError(QueryCancelledError):
    """The query's deadline elapsed before it finished."""
