"""Expression trees for the query engine.

Expressions evaluate against a *row environment* — a dict mapping column
names to values — plus an :class:`EvalContext` that owns the JSON parser
and its cost counters. The context is how the engine attributes time to
"Parse" in the paper's cost breakdowns: every ``get_json_object``
evaluation parses through ``context.parser``.

The tree is also what Maxson's plan rewriter walks (paper Algorithm 1):
:class:`GetJsonObject` nodes matching a valid cache entry are replaced by
:class:`CachedField` placeholders, which read pre-parsed values straight
from the row environment (the Value Combiner stitches those values in
under the placeholder's output name).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..jsonlib.doccache import DEFAULT_DOC_CACHE_BYTES, INVALID, DocumentCache
from ..jsonlib.errors import JsonParseError
from ..jsonlib.jackson import JacksonParser
from ..jsonlib.jsonpath import evaluate as eval_path
from ..jsonlib.jsonpath import parse_path
from .errors import ExecutionError, PlanError

__all__ = [
    "EvalContext",
    "Expression",
    "Column",
    "Literal",
    "Alias",
    "ExtractionCall",
    "GetJsonObject",
    "GetXmlObject",
    "CachedField",
    "BinaryOp",
    "UnaryOp",
    "CastExpr",
    "InList",
    "Between",
    "AggregateCall",
    "walk",
    "transform",
]


@dataclass
class EvalContext:
    """Shared evaluation state: the parsers and their stats.

    ``projection_parser`` optionally replaces full parsing with a
    Mison-style projecting parser; when set, ``get_json_object`` projects a
    single path instead of deserialising the document (the Spark+Mison
    configuration of the paper's Fig 15). ``xml_parser`` is created
    lazily; its cost is attributed to the same parse metrics.
    """

    parser: JacksonParser = field(default_factory=JacksonParser)
    projection_parser: object = None  # duck-typed: .project(text, [path])
    xml_parser: object = None  # lazily-created repro.xmllib.XmlParser
    #: Parse-once sharing scopes for the batch path (created lazily).
    #: Within one context, every distinct document text is parsed once no
    #: matter how many expressions extract paths from it; the parser's
    #: stats charge that single parse, never the shared re-reads.
    json_documents: DocumentCache = None  # type: ignore[assignment]
    xml_documents: DocumentCache = None  # type: ignore[assignment]
    #: Byte budget handed to the document caches above (``None`` =
    #: unbounded; defaults to the cache's own 64 MiB budget).
    doc_cache_bytes: int | None = DEFAULT_DOC_CACHE_BYTES

    def get_json_object(self, text: object, raw_path: str) -> object:
        """Hive-semantics extraction, charging cost to this context."""
        if text is None:
            return None
        if not isinstance(text, str):
            raise ExecutionError(
                f"get_json_object expects a string column, got {type(text).__name__}"
            )
        if self.projection_parser is not None:
            return self.projection_parser.project(text, [raw_path])[
                parse_path(raw_path).raw
            ]
        try:
            document = self.parser.parse(text)
        except JsonParseError:
            return None
        return eval_path(raw_path, document)

    def get_xml_object(self, text: object, raw_path: str) -> object:
        """XML flavour of the same contract (paper's extension target)."""
        if text is None:
            return None
        if not isinstance(text, str):
            raise ExecutionError(
                f"get_xml_object expects a string column, got {type(text).__name__}"
            )
        from ..xmllib.parser import XmlParseError, XmlParser
        from ..xmllib.xpath import evaluate_xpath

        if self.xml_parser is None:
            self.xml_parser = XmlParser()
        try:
            document = self.xml_parser.parse(text)
        except XmlParseError:
            return None
        return evaluate_xpath(raw_path, document)

    # -- vectorized, parse-once variants (batch execution path) --------
    def get_json_objects(self, texts: list, raw_path: str) -> list:
        """Vectorized ``get_json_object`` over a whole column.

        Parses each distinct document once per context (not once per
        consuming expression) by routing through a shared
        :class:`~repro.jsonlib.doccache.DocumentCache`; row semantics and
        error messages are identical to :meth:`get_json_object`.
        """
        if self.projection_parser is not None:
            # Projecting parsers skip full parsing already; nothing to
            # share, so delegate row-by-row for identical behaviour.
            return [self.get_json_object(text, raw_path) for text in texts]
        if self.json_documents is None:
            self.json_documents = DocumentCache(
                self.parser, JsonParseError, max_bytes=self.doc_cache_bytes
            )
        documents = self.json_documents
        path = parse_path(raw_path)
        out = []
        append = out.append
        for text in texts:
            if text is None:
                append(None)
                continue
            if not isinstance(text, str):
                raise ExecutionError(
                    "get_json_object expects a string column, "
                    f"got {type(text).__name__}"
                )
            document = documents.document(text)
            append(None if document is INVALID else eval_path(path, document))
        return out

    def get_xml_objects(self, texts: list, raw_path: str) -> list:
        """Vectorized ``get_xml_object`` with the same sharing contract."""
        from ..xmllib.parser import XmlParseError, XmlParser
        from ..xmllib.xpath import evaluate_xpath

        if self.xml_parser is None:
            self.xml_parser = XmlParser()
        if self.xml_documents is None:
            self.xml_documents = DocumentCache(
                self.xml_parser, XmlParseError, max_bytes=self.doc_cache_bytes
            )
        documents = self.xml_documents
        out = []
        append = out.append
        for text in texts:
            if text is None:
                append(None)
                continue
            if not isinstance(text, str):
                raise ExecutionError(
                    "get_xml_object expects a string column, "
                    f"got {type(text).__name__}"
                )
            document = documents.document(text)
            append(None if document is INVALID else evaluate_xpath(raw_path, document))
        return out

    def shared_parse_hits(self) -> int:
        """Parses avoided by document sharing in this context so far."""
        hits = 0
        if self.json_documents is not None:
            hits += self.json_documents.hits
        if self.xml_documents is not None:
            hits += self.xml_documents.hits
        return hits

    def doc_cache_evictions(self) -> int:
        """Documents evicted from the budgeted caches in this context."""
        evictions = 0
        if self.json_documents is not None:
            evictions += self.json_documents.evictions
        if self.xml_documents is not None:
            evictions += self.xml_documents.evictions
        return evictions


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, row: dict, context: EvalContext) -> object:
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        return ()

    def with_children(self, children: tuple["Expression", ...]) -> "Expression":
        """Rebuild this node with new children (for tree rewrites)."""
        if children != self.children():
            raise PlanError(f"{type(self).__name__} does not accept new children")
        return self

    def output_name(self) -> str:
        """Column name this expression produces when projected unaliased."""
        return self.sql()

    def sql(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"{type(self).__name__}({self.sql()})"


@dataclass(frozen=True)
class Column(Expression):
    """A reference to a column of the row environment."""

    name: str

    def evaluate(self, row: dict, context: EvalContext) -> object:
        try:
            return row[self.name]
        except KeyError:
            raise ExecutionError(
                f"column {self.name!r} not found in row; have {sorted(row)}"
            ) from None

    def output_name(self) -> str:
        return self.name.split(".")[-1]

    def sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant."""

    value: object

    def evaluate(self, row: dict, context: EvalContext) -> object:
        return self.value

    def sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class Alias(Expression):
    """``child AS name``."""

    child: Expression
    name: str

    def evaluate(self, row: dict, context: EvalContext) -> object:
        return self.child.evaluate(row, context)

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expression, ...]) -> "Alias":
        (child,) = children
        return Alias(child, self.name)

    def output_name(self) -> str:
        return self.name

    def sql(self) -> str:
        return f"{self.child.sql()} AS {self.name}"


@dataclass(frozen=True)
class ExtractionCall(Expression):
    """Base class for parse-then-extract UDF calls over string columns.

    Maxson's plan rewriter (Algorithm 1) pattern-matches this base class,
    so any format whose extraction calls subclass it — JSON today, XML as
    the paper's proposed extension — gets caching, the Value Combiner and
    predicate pushdown for free. The path *syntax* distinguishes formats
    in the cache registry (``$...`` JSON, ``/...`` XML).
    """

    column: Expression
    path: str

    #: SQL function name; subclasses override.
    function_name = "extract"

    def children(self) -> tuple[Expression, ...]:
        return (self.column,)

    def with_children(self, children: tuple[Expression, ...]) -> "ExtractionCall":
        (column,) = children
        return type(self)(column, self.path)

    def _leaf(self) -> str:
        return "value"

    def output_name(self) -> str:
        base = self.column.output_name()
        return f"{base}_{self._leaf()}"

    def sql(self) -> str:
        return f"{self.function_name}({self.column.sql()}, '{self.path}')"


@dataclass(frozen=True)
class GetJsonObject(ExtractionCall):
    """``get_json_object(column, '$.path')`` — the paper's focal UDF."""

    function_name = "get_json_object"

    def __post_init__(self) -> None:
        parse_path(self.path)  # validate eagerly; raises JsonPathError

    def evaluate(self, row: dict, context: EvalContext) -> object:
        text = self.column.evaluate(row, context)
        return context.get_json_object(text, self.path)

    def _leaf(self) -> str:
        return parse_path(self.path).leaf or "value"


@dataclass(frozen=True)
class GetXmlObject(ExtractionCall):
    """``get_xml_object(column, '/root/path')`` — the XML extension."""

    function_name = "get_xml_object"

    def __post_init__(self) -> None:
        from ..xmllib.xpath import parse_xpath

        parse_xpath(self.path)  # validate eagerly; raises XPathError

    def evaluate(self, row: dict, context: EvalContext) -> object:
        text = self.column.evaluate(row, context)
        return context.get_xml_object(text, self.path)

    def _leaf(self) -> str:
        from ..xmllib.xpath import parse_xpath

        return parse_xpath(self.path).leaf or "value"


@dataclass(frozen=True)
class CachedField(Expression):
    """Placeholder installed by the Maxson parser for a cache hit.

    Carries the description the paper stores in the placeholder
    (column name, column expression id, JSONPath) plus the environment key
    under which the Value Combiner surfaces the pre-parsed value.
    """

    column_name: str
    column_id: int
    path: str
    env_key: str

    def evaluate(self, row: dict, context: EvalContext) -> object:
        try:
            return row[self.env_key]
        except KeyError:
            raise ExecutionError(
                f"cached field {self.env_key!r} missing from stitched row; "
                "Value Combiner misconfigured"
            ) from None

    def output_name(self) -> str:
        return self.env_key

    def sql(self) -> str:
        return f"cached({self.column_name}, '{self.path}')"


_ARITH = {"+", "-", "*", "/", "%"}
_COMPARE = {"=", "!=", "<", "<=", ">", ">="}
_LOGIC = {"and", "or"}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _null_safe_compare(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None  # SQL three-valued logic
    # Hive coerces string/number comparisons numerically; Python's ==
    # would silently return False for '2.5' == 2.5, so coerce eagerly.
    if (isinstance(left, str) and _is_number(right)) or (
        _is_number(left) and isinstance(right, str)
    ):
        coerced = _coerce_pair(left, right)
        if coerced is None:
            return None
        left, right = coerced
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        # Hive coerces; we follow get_json_object's habit of string/number
        # mixing by comparing as floats when either side parses as one.
        coerced = _coerce_pair(left, right)
        if coerced is None:
            return None
        return _null_safe_compare(op, *coerced)
    raise AssertionError(op)  # pragma: no cover


def _coerce_pair(left: object, right: object) -> tuple | None:
    try:
        return float(left), float(right)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


# Scalar kernels shared verbatim by the row interpreter and the batch
# compiler (:mod:`repro.engine.batch`): one implementation per operator
# means the two execution paths cannot drift apart semantically.
def _combine_and(left: object, right: object) -> object:
    """Three-valued AND given a non-False left and an evaluated right."""
    if left is None or right is None:
        return False if right is False else None
    return bool(left) and bool(right)


def _combine_or(left: object, right: object) -> object:
    """Three-valued OR given a non-True left and an evaluated right."""
    if left is None or right is None:
        return True if right is True else None
    return bool(left) or bool(right)


def _apply_arith(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    a = _coerce_numeric(left)
    b = _coerce_numeric(right)
    if a is None or b is None:
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        return None
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return None if b == 0 else a / b
    if op == "%":
        return None if b == 0 else a % b
    raise AssertionError(op)  # pragma: no cover


def _apply_unary(op: str, value: object) -> object:
    if op == "is null":
        return value is None
    if op == "is not null":
        return value is not None
    if value is None:
        return None
    if op == "not":
        return not value
    if op == "neg":
        number = _coerce_numeric(value)
        return None if number is None else -number
    raise PlanError(f"unknown unary op {op!r}")


def _apply_cast(target: str, value: object) -> object:
    if value is None:
        return None
    try:
        if target == "int":
            return int(float(value)) if isinstance(value, str) else int(value)
        if target == "double":
            return float(value)
        if target == "string":
            return value if isinstance(value, str) else _render(value)
        if target == "boolean":
            return bool(value)
    except (TypeError, ValueError):
        return None
    raise PlanError(f"unknown cast target {target!r}")


def _in_list_result(value: object, others) -> object:
    """``value IN others`` with SQL NULL semantics.

    ``others`` may be a lazy iterable; a match short-circuits without
    consuming (= evaluating) the remaining options, exactly like the row
    interpreter always did.
    """
    if value is None:
        return None
    saw_null = False
    for other in others:
        if other is None:
            saw_null = True
        elif _null_safe_compare("=", value, other) is True:
            return True
    return None if saw_null else False


def _between_result(value: object, low: object, high: object) -> object:
    ge = _null_safe_compare(">=", value, low)
    le = _null_safe_compare("<=", value, high)
    if ge is None or le is None:
        return False if ge is False or le is False else None
    return ge and le


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison, or boolean connective."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITH | _COMPARE | _LOGIC:
            raise PlanError(f"unknown operator {self.op!r}")

    def evaluate(self, row: dict, context: EvalContext) -> object:
        if self.op in _LOGIC:
            left = self.left.evaluate(row, context)
            # SQL short-circuit with three-valued logic.
            if self.op == "and":
                if left is False:
                    return False
                return _combine_and(left, self.right.evaluate(row, context))
            if left is True:
                return True
            return _combine_or(left, self.right.evaluate(row, context))
        left = self.left.evaluate(row, context)
        right = self.right.evaluate(row, context)
        if self.op in _COMPARE:
            return _null_safe_compare(self.op, left, right)
        return _apply_arith(self.op, left, right)

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expression, ...]) -> "BinaryOp":
        left, right = children
        return BinaryOp(self.op, left, right)

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


def _coerce_numeric(value: object) -> int | float | None:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return None
    return None


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``NOT x``, ``-x``, ``x IS NULL`` and ``x IS NOT NULL``."""

    op: str  # 'not' | 'neg' | 'is null' | 'is not null'
    child: Expression

    def evaluate(self, row: dict, context: EvalContext) -> object:
        return _apply_unary(self.op, self.child.evaluate(row, context))

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expression, ...]) -> "UnaryOp":
        (child,) = children
        return UnaryOp(self.op, child)

    def sql(self) -> str:
        if self.op in ("is null", "is not null"):
            return f"({self.child.sql()} {self.op.upper()})"
        symbol = "NOT " if self.op == "not" else "-"
        return f"({symbol}{self.child.sql()})"


@dataclass(frozen=True)
class CastExpr(Expression):
    """``CAST(x AS type)`` for the small engine type lattice."""

    child: Expression
    target: str  # 'int' | 'double' | 'string' | 'boolean'

    def evaluate(self, row: dict, context: EvalContext) -> object:
        return _apply_cast(self.target, self.child.evaluate(row, context))

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Expression, ...]) -> "CastExpr":
        (child,) = children
        return CastExpr(child, self.target)

    def sql(self) -> str:
        return f"CAST({self.child.sql()} AS {self.target})"


def _render(value: object) -> str:
    from ..jsonlib.jackson import dumps

    if isinstance(value, (dict, list)):
        return dumps(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass(frozen=True)
class InList(Expression):
    """``x IN (a, b, c)``."""

    child: Expression
    options: tuple[Expression, ...]

    def evaluate(self, row: dict, context: EvalContext) -> object:
        value = self.child.evaluate(row, context)
        return _in_list_result(
            value, (option.evaluate(row, context) for option in self.options)
        )

    def children(self) -> tuple[Expression, ...]:
        return (self.child, *self.options)

    def with_children(self, children: tuple[Expression, ...]) -> "InList":
        return InList(children[0], tuple(children[1:]))

    def sql(self) -> str:
        inner = ", ".join(o.sql() for o in self.options)
        return f"({self.child.sql()} IN ({inner}))"


@dataclass(frozen=True)
class Between(Expression):
    """``x BETWEEN lo AND hi`` (inclusive both ends, like SQL)."""

    child: Expression
    low: Expression
    high: Expression

    def evaluate(self, row: dict, context: EvalContext) -> object:
        value = self.child.evaluate(row, context)
        low = self.low.evaluate(row, context)
        high = self.high.evaluate(row, context)
        return _between_result(value, low, high)

    def children(self) -> tuple[Expression, ...]:
        return (self.child, self.low, self.high)

    def with_children(self, children: tuple[Expression, ...]) -> "Between":
        child, low, high = children
        return Between(child, low, high)

    def sql(self) -> str:
        return f"({self.child.sql()} BETWEEN {self.low.sql()} AND {self.high.sql()})"


_AGGREGATES = {"count", "sum", "avg", "min", "max"}


@dataclass(frozen=True)
class AggregateCall(Expression):
    """``count(*) / count(x) / sum(x) / avg(x) / min(x) / max(x)``.

    Aggregate nodes never evaluate row-wise; the aggregation operator
    consumes them directly (``argument`` may be None for ``count(*)``).
    """

    func: str
    argument: Expression | None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in _AGGREGATES:
            raise PlanError(f"unknown aggregate {self.func!r}")
        if self.func != "count" and self.argument is None:
            raise PlanError(f"{self.func}() requires an argument")

    def evaluate(self, row: dict, context: EvalContext) -> object:
        raise ExecutionError(
            f"aggregate {self.func}() evaluated outside an aggregation operator"
        )

    def children(self) -> tuple[Expression, ...]:
        return (self.argument,) if self.argument is not None else ()

    def with_children(self, children: tuple[Expression, ...]) -> "AggregateCall":
        argument = children[0] if children else None
        return AggregateCall(self.func, argument, self.distinct)

    def output_name(self) -> str:
        inner = self.argument.output_name() if self.argument else "*"
        return f"{self.func}_{inner}" if inner != "*" else self.func

    def sql(self) -> str:
        inner = self.argument.sql() if self.argument else "*"
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


# ----------------------------------------------------------------------
# tree utilities
# ----------------------------------------------------------------------
def walk(expr: Expression):
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def transform(expr: Expression, fn) -> Expression:
    """Bottom-up rewrite: ``fn(node)`` may return a replacement or the node.

    This is the recursive Replace() of the paper's Algorithm 1 — the Maxson
    parser calls it with a function that maps cached ``GetJsonObject`` nodes
    to ``CachedField`` placeholders and leaves everything else untouched.
    """
    children = expr.children()
    if children:
        new_children = tuple(transform(child, fn) for child in children)
        if new_children != children:
            expr = expr.with_children(new_children)
    replacement = fn(expr)
    return replacement if replacement is not None else expr
