"""Lower logical plans to physical operators.

Responsibilities, mirroring (a small slice of) SparkSQL's analyzer +
optimizer:

* resolve identifiers case-insensitively — table and column references
  are rewritten to the catalog's canonical spelling (exact match first),
  matching SparkSQL's default ``spark.sql.caseSensitive=false``; this is
  what makes the plan-cache fingerprint's case folding safe, since two
  recased spellings of a query now compile to the same plan. (Schemas
  with column names differing only in case would defeat the folding; no
  schema in this repo does.);
* resolve ``*`` against scan schemas;
* column pruning — each scan reads only the columns the plan references;
* SARG extraction — conjuncts of a WHERE clause that compare a plain
  column to a literal become search arguments pushed into the scan (the
  baseline engine can only push predicates on *real* columns; pushing
  predicates on cached JSONPaths is Maxson's contribution, implemented in
  :mod:`repro.core.pushdown`);
* ORDER BY / HAVING resolution — sort keys and having predicates that
  textually match a SELECT expression are rewritten to reference its
  output column, otherwise the sort is planned below the projection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.sargs import AndSarg, ComparisonSarg, Sarg, SargOp
from .catalog import Catalog
from .errors import PlanError
from .expressions import (
    AggregateCall,
    Alias,
    Between,
    BinaryOp,
    Column,
    Expression,
    Literal,
    UnaryOp,
    walk,
)
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    SortKey,
)
from .physical import (
    AggregateExec,
    FilterExec,
    HashJoinExec,
    LimitExec,
    PhysicalPlan,
    ProjectExec,
    ScanExec,
    SortExec,
)
from .sqlparser import Star

__all__ = ["Planner", "PlannedQuery"]


@dataclass
class PlannedQuery:
    """A compiled physical plan plus planning metadata."""

    physical: PhysicalPlan
    logical: LogicalPlan
    referenced_json_paths: list[tuple[str, str, str, str]]
    """Every (database, table, column, path) mentioned by the query."""
    duplicate_extractions: int = 0
    """Textually identical extraction calls beyond each first occurrence —
    the common subexpressions the batch compiler collapses to one node
    (and evaluates once per batch) at execution time."""


_COMPARE_TO_SARG = {
    "=": SargOp.EQ,
    "<": SargOp.LT,
    "<=": SargOp.LE,
    ">": SargOp.GT,
    ">=": SargOp.GE,
}


class Planner:
    """Compile logical plans against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    def plan(self, logical: LogicalPlan) -> PlannedQuery:
        scans = _collect_scans(logical)
        self._resolve_identifier_case(logical, scans)
        logical = self._expand_stars(logical, scans)
        required = self._required_columns(logical, scans)
        physical = self._lower(logical, required)
        return PlannedQuery(
            physical=physical,
            logical=logical,
            referenced_json_paths=self._referenced_paths(logical, scans),
            duplicate_extractions=self._duplicate_extractions(logical),
        )

    def _duplicate_extractions(self, plan: LogicalPlan) -> int:
        """Count repeated identical extraction calls across the query.

        Expression nodes are frozen dataclasses, so value equality makes
        two ``get_json_object(col, '$.p')`` occurrences — wherever they
        sit in the plan — the same dictionary key. Each occurrence beyond
        the first is a CSE opportunity; the batch compiler's
        equality-memoised compilation eliminates them and reports actual
        eliminations in ``QueryMetrics.duplicate_extractions_eliminated``.
        """
        from .expressions import ExtractionCall

        counts: dict[Expression, int] = {}
        for expr in _all_expressions(plan):
            for node in walk(expr):
                if isinstance(node, ExtractionCall):
                    counts[node] = counts.get(node, 0) + 1
        return sum(count - 1 for count in counts.values())

    # ------------------------------------------------------------------
    # identifier-case resolution (the analyzer's first pass)
    # ------------------------------------------------------------------
    def _resolve_identifier_case(
        self, plan: LogicalPlan, scans: list[LogicalScan]
    ) -> None:
        """Rewrite table and column references to canonical spelling.

        Exact matches always win; otherwise a reference resolves to the
        unique case-insensitive match (a missing or ambiguous reference
        is left untouched and fails downstream exactly as it would have
        before this pass existed). Scans are fixed in place first so
        column resolution sees the canonical schemas.
        """
        for scan in scans:
            if not self.catalog.table_exists(scan.database, scan.table):
                wanted = (scan.database.lower(), scan.table.lower())
                matches = [
                    info
                    for info in self.catalog.list_tables()
                    if (info.database.lower(), info.name.lower()) == wanted
                ]
                if len(matches) == 1:
                    scan.database = matches[0].database
                    scan.table = matches[0].name
        prefix_map: dict[str, tuple[str, LogicalScan]] = {}
        for scan in scans:
            prefix = scan.alias or scan.table
            prefix_map.setdefault(prefix.lower(), (prefix, scan))

        def canonical_column(scan: LogicalScan, name: str) -> str | None:
            if not self.catalog.table_exists(scan.database, scan.table):
                return None
            schema_names = self.catalog.get_table(
                scan.database, scan.table
            ).schema.names
            if name in schema_names:
                return name
            matches = [n for n in schema_names if n.lower() == name.lower()]
            return matches[0] if len(matches) == 1 else None

        def rewrite(node: Expression) -> Expression | None:
            if not isinstance(node, Column):
                return None
            name = node.name
            if "." in name:
                prefix, rest = name.split(".", 1)
                hit = prefix_map.get(prefix.lower())
                if hit is None:
                    return None
                canon_prefix, scan = hit
                canon_col = canonical_column(scan, rest) or rest
                new_name = f"{canon_prefix}.{canon_col}"
                return Column(new_name) if new_name != name else None
            candidates: set[str] = set()
            for scan in scans:
                canon = canonical_column(scan, name)
                if canon == name:
                    return None  # exact match somewhere: leave it
                if canon is not None:
                    candidates.add(canon)
            if len(candidates) == 1:
                return Column(candidates.pop())
            return None

        from .expressions import transform

        _map_expressions(plan, lambda expr: transform(expr, rewrite))

    # ------------------------------------------------------------------
    # star expansion
    # ------------------------------------------------------------------
    def _expand_stars(
        self, plan: LogicalPlan, scans: list[LogicalScan]
    ) -> LogicalPlan:
        if isinstance(plan, LogicalProject):
            plan.child = self._expand_stars(plan.child, scans)
            if any(isinstance(e, Star) for e in plan.expressions):
                expanded: list[Expression] = []
                for expr in plan.expressions:
                    if isinstance(expr, Star):
                        for scan in scans:
                            info = self.catalog.get_table(scan.database, scan.table)
                            expanded.extend(Column(n) for n in info.schema.names)
                    else:
                        expanded.append(expr)
                plan.expressions = expanded
            return plan
        for attr in ("child", "left", "right"):
            child = getattr(plan, attr, None)
            if isinstance(child, LogicalPlan):
                setattr(plan, attr, self._expand_stars(child, scans))
        if isinstance(plan, LogicalAggregate) and any(
            isinstance(e, Star) for e in plan.output
        ):
            raise PlanError("'*' cannot appear in an aggregate SELECT list")
        return plan

    # ------------------------------------------------------------------
    # column pruning
    # ------------------------------------------------------------------
    def _required_columns(
        self, plan: LogicalPlan, scans: list[LogicalScan]
    ) -> dict[int, list[str]]:
        """Map id(scan) -> ordered column list that scan must read."""
        referenced: set[str] = set()
        for expr in _all_expressions(plan):
            for node in walk(expr):
                if isinstance(node, Column):
                    referenced.add(node.name)
        required: dict[int, list[str]] = {}
        for scan in scans:
            info = self.catalog.get_table(scan.database, scan.table)
            needed: list[str] = []
            for name in info.schema.names:
                qualified = f"{scan.alias}.{name}" if scan.alias else None
                if name in referenced or (qualified and qualified in referenced):
                    needed.append(name)
            if not needed:
                # Degenerate plans (e.g. count(*)) still need one column to
                # drive row counts; pick the narrowest-looking first column.
                needed = [info.schema.names[0]]
            required[id(scan)] = needed
        return required

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def _lower(
        self, plan: LogicalPlan, required: dict[int, list[str]]
    ) -> PhysicalPlan:
        if isinstance(plan, LogicalScan):
            self.catalog.get_table(plan.database, plan.table)  # existence check
            return ScanExec(
                database=plan.database,
                table=plan.table,
                alias=plan.alias,
                columns=required[id(plan)],
            )
        if isinstance(plan, LogicalFilter):
            if isinstance(plan.child, LogicalAggregate):
                return self._lower_having(plan, required)
            child = self._lower(plan.child, required)
            child, condition = self._push_sargs(child, plan.condition)
            if condition is None:
                return child
            return FilterExec(child, condition)
        if isinstance(plan, LogicalProject):
            child = self._lower(plan.child, required)
            return ProjectExec(child, plan.expressions)
        if isinstance(plan, LogicalAggregate):
            child = self._lower(plan.child, required)
            return AggregateExec(child, plan.group_keys, plan.output)
        if isinstance(plan, LogicalSort):
            return self._lower_sort(plan, required)
        if isinstance(plan, LogicalLimit):
            return LimitExec(self._lower(plan.child, required), plan.count)
        if isinstance(plan, LogicalJoin):
            return self._lower_join(plan, required)
        raise PlanError(f"cannot lower {type(plan).__name__}")

    def _lower_having(
        self, plan: LogicalFilter, required: dict[int, list[str]]
    ) -> PhysicalPlan:
        """HAVING: resolve aggregate references against (or add them to)
        the aggregate's output, then filter above it."""
        aggregate: LogicalAggregate = plan.child  # type: ignore[assignment]
        by_sql: dict[str, str] = {}
        for expr in aggregate.output:
            target = expr.child if isinstance(expr, Alias) else expr
            by_sql[target.sql()] = expr.output_name()
        hidden: list[Expression] = []

        def resolve(node: Expression) -> Expression | None:
            if not isinstance(node, AggregateCall):
                return None
            name = by_sql.get(node.sql())
            if name is None:
                name = f"__having_{len(hidden)}"
                hidden.append(Alias(node, name))
                by_sql[node.sql()] = name
            return Column(name)

        from .expressions import transform

        condition = transform(plan.condition, resolve)
        visible = [e.output_name() for e in aggregate.output]
        aggregate.output = aggregate.output + hidden
        child = self._lower(aggregate, required)
        filtered = FilterExec(child, condition)
        if hidden:
            # Project the hidden helper columns back out.
            return ProjectExec(filtered, [Column(n) for n in visible])
        return filtered

    def _lower_join(
        self, plan: LogicalJoin, required: dict[int, list[str]]
    ) -> PhysicalPlan:
        left = self._lower(plan.left, required)
        right = self._lower(plan.right, required)
        left_names = left.output_names()
        right_names = right.output_names()
        left_keys: list[Expression] = []
        right_keys: list[Expression] = []
        residual: list[Expression] = []
        for conjunct in _split_conjuncts(plan.condition):
            pair = _equi_pair(conjunct, left_names, right_names)
            if pair is None:
                residual.append(conjunct)
            else:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
        if not left_keys:
            raise PlanError(
                "join requires at least one equi-condition "
                f"(got {plan.condition.sql()})"
            )
        residual_expr: Expression | None = None
        for conjunct in residual:
            residual_expr = (
                conjunct
                if residual_expr is None
                else BinaryOp("and", residual_expr, conjunct)
            )
        return HashJoinExec(left, right, left_keys, right_keys, residual_expr)

    def _lower_sort(
        self, plan: LogicalSort, required: dict[int, list[str]]
    ) -> PhysicalPlan:
        child_logical = plan.child
        # Limit directly under sort? The parser builds Sort above, Limit
        # outermost, so child here is Project/Aggregate/Filter.
        if isinstance(child_logical, (LogicalProject, LogicalAggregate)):
            outputs = (
                child_logical.expressions
                if isinstance(child_logical, LogicalProject)
                else child_logical.output
            )
            resolved, all_resolved = _resolve_keys_against_output(plan.keys, outputs)
            if all_resolved:
                child = self._lower(child_logical, required)
                return SortExec(child, resolved)
            if isinstance(child_logical, LogicalProject):
                # Sort below the projection: keys reference pruned inputs.
                inner = self._lower(child_logical.child, required)
                sort = SortExec(inner, plan.keys)
                return ProjectExec(sort, child_logical.expressions)
            raise PlanError(
                "ORDER BY expression not found in aggregate output: "
                + ", ".join(k.expression.sql() for k in plan.keys)
            )
        child = self._lower(child_logical, required)
        return SortExec(child, plan.keys)

    def _push_sargs(
        self, child: PhysicalPlan, condition: Expression
    ) -> tuple[PhysicalPlan, Expression | None]:
        """Attach SARG-able conjuncts to a directly-underlying scan.

        The full condition is *kept* as a residual filter (SARGs eliminate
        row groups, not rows), so correctness never depends on statistics.
        """
        if not isinstance(child, ScanExec):
            return child, condition
        scan_columns = set(child.columns)
        sargs: list[Sarg] = []
        for conjunct in _split_conjuncts(condition):
            sarg = _to_sarg(conjunct, scan_columns, child.alias)
            if sarg is not None:
                sargs.append(sarg)
        if sargs:
            child.sarg = AndSarg(tuple(sargs)) if len(sargs) > 1 else sargs[0]
        return child, condition

    # ------------------------------------------------------------------
    def _referenced_paths(
        self, plan: LogicalPlan, scans: list[LogicalScan]
    ) -> list[tuple[str, str, str, str]]:
        from .expressions import ExtractionCall

        alias_to_scan: dict[str, LogicalScan] = {}
        for scan in scans:
            alias_to_scan[scan.alias or scan.table] = scan
            alias_to_scan.setdefault(scan.table, scan)
        out: list[tuple[str, str, str, str]] = []
        seen: set[tuple[str, str, str, str]] = set()
        for expr in _all_expressions(plan):
            for node in walk(expr):
                if not isinstance(node, ExtractionCall):
                    continue
                if not isinstance(node.column, Column):
                    continue
                column = node.column.name
                if "." in column:
                    prefix, column_name = column.split(".", 1)
                    scan = alias_to_scan.get(prefix)
                else:
                    column_name = column
                    scan = self._scan_with_column(scans, column_name)
                if scan is None:
                    continue
                key = (scan.database, scan.table, column_name, node.path)
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    def _scan_with_column(
        self, scans: list[LogicalScan], column: str
    ) -> LogicalScan | None:
        for scan in scans:
            info = self.catalog.get_table(scan.database, scan.table)
            if column in info.schema:
                return scan
        return None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _collect_scans(plan: LogicalPlan) -> list[LogicalScan]:
    if isinstance(plan, LogicalScan):
        return [plan]
    out: list[LogicalScan] = []
    for child in plan.children():
        out.extend(_collect_scans(child))
    return out


def _map_expressions(plan: LogicalPlan, fn) -> None:
    """Apply ``fn`` to every expression of the plan tree, in place."""
    if isinstance(plan, LogicalFilter):
        plan.condition = fn(plan.condition)
    elif isinstance(plan, LogicalProject):
        plan.expressions = [fn(e) for e in plan.expressions]
    elif isinstance(plan, LogicalAggregate):
        plan.group_keys = [fn(e) for e in plan.group_keys]
        plan.output = [fn(e) for e in plan.output]
    elif isinstance(plan, LogicalSort):
        plan.keys = [SortKey(fn(k.expression), k.ascending) for k in plan.keys]
    elif isinstance(plan, LogicalJoin):
        plan.condition = fn(plan.condition)
    for child in plan.children():
        _map_expressions(child, fn)


def _all_expressions(plan: LogicalPlan):
    if isinstance(plan, LogicalFilter):
        yield plan.condition
    elif isinstance(plan, LogicalProject):
        yield from plan.expressions
    elif isinstance(plan, LogicalAggregate):
        yield from plan.group_keys
        yield from plan.output
    elif isinstance(plan, LogicalSort):
        for key in plan.keys:
            yield key.expression
    elif isinstance(plan, LogicalJoin):
        yield plan.condition
    for child in plan.children():
        yield from _all_expressions(child)


def _split_conjuncts(expr: Expression) -> list[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _column_name_for_scan(
    expr: Expression, scan_columns: set[str], alias: str | None
) -> str | None:
    if not isinstance(expr, Column):
        return None
    name = expr.name
    if name in scan_columns:
        return name
    if alias and name.startswith(f"{alias}."):
        bare = name[len(alias) + 1 :]
        if bare in scan_columns:
            return bare
    return None


def _to_sarg(
    conjunct: Expression, scan_columns: set[str], alias: str | None
) -> Sarg | None:
    """Translate one conjunct to a SARG if it compares a column to a literal."""
    if isinstance(conjunct, BinaryOp) and conjunct.op in _COMPARE_TO_SARG:
        column = _column_name_for_scan(conjunct.left, scan_columns, alias)
        literal = conjunct.right
        op = _COMPARE_TO_SARG[conjunct.op]
        if column is None:
            column = _column_name_for_scan(conjunct.right, scan_columns, alias)
            literal = conjunct.left
            op = _flip(op)
        if column is None or not isinstance(literal, Literal) or literal.value is None:
            return None
        return ComparisonSarg(column, op, literal.value)
    if isinstance(conjunct, Between):
        column = _column_name_for_scan(conjunct.child, scan_columns, alias)
        if (
            column is None
            or not isinstance(conjunct.low, Literal)
            or not isinstance(conjunct.high, Literal)
        ):
            return None
        return AndSarg(
            (
                ComparisonSarg(column, SargOp.GE, conjunct.low.value),
                ComparisonSarg(column, SargOp.LE, conjunct.high.value),
            )
        )
    if isinstance(conjunct, UnaryOp) and conjunct.op in ("is null", "is not null"):
        column = _column_name_for_scan(conjunct.child, scan_columns, alias)
        if column is None:
            return None
        op = SargOp.IS_NULL if conjunct.op == "is null" else SargOp.IS_NOT_NULL
        return ComparisonSarg(column, op)
    return None


def _columns_in(expr: Expression) -> set[str]:
    return {node.name for node in walk(expr) if isinstance(node, Column)}


def _equi_pair(
    conjunct: Expression, left_names: set[str], right_names: set[str]
) -> tuple[Expression, Expression] | None:
    """If the conjunct is ``left_expr = right_expr``, return the pair
    oriented (left-side key, right-side key); otherwise None."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    a_cols = _columns_in(conjunct.left)
    b_cols = _columns_in(conjunct.right)
    if not a_cols or not b_cols:
        return None
    if a_cols <= left_names and b_cols <= right_names:
        return conjunct.left, conjunct.right
    if a_cols <= right_names and b_cols <= left_names:
        return conjunct.right, conjunct.left
    return None


def _flip(op: SargOp) -> SargOp:
    return {
        SargOp.EQ: SargOp.EQ,
        SargOp.LT: SargOp.GT,
        SargOp.LE: SargOp.GE,
        SargOp.GT: SargOp.LT,
        SargOp.GE: SargOp.LE,
    }[op]


def _resolve_keys_against_output(
    keys: list[SortKey], outputs: list[Expression]
) -> tuple[list[SortKey], bool]:
    """Rewrite sort keys to output-column references where possible."""
    by_sql: dict[str, str] = {}
    names: set[str] = set()
    names_lower: dict[str, list[str]] = {}
    for expr in outputs:
        name = expr.output_name()
        names.add(name)
        names_lower.setdefault(name.lower(), []).append(name)
        target = expr.child if isinstance(expr, Alias) else expr
        by_sql[target.sql()] = name
    resolved: list[SortKey] = []
    ok = True
    for key in keys:
        expr = key.expression
        if isinstance(expr, Column) and expr.name in names:
            resolved.append(key)
            continue
        if isinstance(expr, Column):
            # Case-insensitive fallback, matching the analyzer's
            # identifier resolution (unique matches only).
            candidates = names_lower.get(expr.name.lower(), [])
            if len(candidates) == 1:
                resolved.append(SortKey(Column(candidates[0]), key.ascending))
                continue
        name = by_sql.get(expr.sql())
        if name is not None:
            resolved.append(SortKey(Column(name), key.ascending))
            continue
        if isinstance(expr, AggregateCall):
            ok = False
            break
        ok = False
        break
    return (resolved, ok) if ok else (keys, False)
