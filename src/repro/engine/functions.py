"""Builtin scalar functions.

A small registry of Hive-style scalar functions usable anywhere an
expression is (SELECT list, WHERE, GROUP BY, ORDER BY). All functions
follow the SQL NULL convention — NULL in, NULL out — except ``coalesce``
and ``nvl``, whose purpose is to absorb NULLs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import PlanError
from .expressions import EvalContext, Expression

__all__ = ["FunctionCall", "SCALAR_FUNCTIONS", "is_scalar_function"]


def _null_safe(fn):
    """Wrap an implementation so any NULL argument yields NULL."""

    def wrapper(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


def _coalesce(*args):
    for a in args:
        if a is not None:
            return a
    return None


def _concat(*args):
    if any(a is None for a in args):
        return None
    return "".join(_stringify(a) for a in args)


def _stringify(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _substr(value, start, length=None):
    # Hive substr is 1-based; negative start counts from the end.
    text = _stringify(value)
    start = int(start)
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(len(text) + start, 0)
    else:
        begin = 0
    if length is None:
        return text[begin:]
    length = int(length)
    if length <= 0:
        return ""
    return text[begin : begin + length]


def _round(value, digits=0):
    return round(float(value), int(digits)) if digits else float(round(float(value)))


def _to_number(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return float(value)


#: name -> (implementation, min_args, max_args). ``None`` max = variadic.
SCALAR_FUNCTIONS: dict[str, tuple] = {
    "length": (_null_safe(lambda v: len(_stringify(v))), 1, 1),
    "lower": (_null_safe(lambda v: _stringify(v).lower()), 1, 1),
    "upper": (_null_safe(lambda v: _stringify(v).upper()), 1, 1),
    "trim": (_null_safe(lambda v: _stringify(v).strip()), 1, 1),
    "abs": (_null_safe(lambda v: abs(_to_number(v))), 1, 1),
    "round": (_null_safe(_round), 1, 2),
    "concat": (_concat, 1, None),
    "coalesce": (_coalesce, 1, None),
    "nvl": (_coalesce, 2, 2),
    "substr": (_null_safe(_substr), 2, 3),
    "substring": (_null_safe(_substr), 2, 3),
}


def is_scalar_function(name: str) -> bool:
    return name.lower() in SCALAR_FUNCTIONS


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call to a registered scalar function."""

    name: str
    arguments: tuple[Expression, ...]

    def __post_init__(self) -> None:
        entry = SCALAR_FUNCTIONS.get(self.name.lower())
        if entry is None:
            raise PlanError(f"unknown function {self.name!r}")
        _, min_args, max_args = entry
        n = len(self.arguments)
        if n < min_args or (max_args is not None and n > max_args):
            expect = (
                f"{min_args}" if max_args == min_args
                else f"{min_args}..{max_args if max_args is not None else 'n'}"
            )
            raise PlanError(
                f"{self.name}() takes {expect} arguments, got {n}"
            )

    def evaluate(self, row: dict, context: EvalContext) -> object:
        impl = SCALAR_FUNCTIONS[self.name.lower()][0]
        values = [a.evaluate(row, context) for a in self.arguments]
        try:
            return impl(*values)
        except (TypeError, ValueError):
            return None  # Hive-style: uncastable input -> NULL

    def children(self) -> tuple[Expression, ...]:
        return self.arguments

    def with_children(self, children: tuple[Expression, ...]) -> "FunctionCall":
        return FunctionCall(self.name, tuple(children))

    def output_name(self) -> str:
        return self.name.lower()

    def sql(self) -> str:
        inner = ", ".join(a.sql() for a in self.arguments)
        return f"{self.name.lower()}({inner})"
