"""Render benchmark results into a Markdown report.

The benchmarks under ``benchmarks/`` persist their series as JSON files in
``benchmarks/results/``. This module turns that directory into a compact
Markdown report (per-experiment sections with the headline numbers), so
the paper-vs-measured record can be regenerated after every run::

    python -m repro.reporting benchmarks/results > report.md
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["load_results", "render_report"]


def load_results(directory: str | Path) -> dict[str, dict]:
    """All ``*.json`` result files, keyed by stem, sorted by name.

    A file that fails to parse (truncated by a killed benchmark run,
    hand-edited, …) is skipped with a warning on stderr instead of
    failing the whole directory — one corrupt result must not block
    reporting on every healthy one.
    """
    directory = Path(directory)
    out: dict[str, dict] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            out[path.stem] = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            print(
                f"warning: skipping corrupt result file {path}: {exc}",
                file=sys.stderr,
            )
    return out


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _flatten(payload: dict, prefix: str = "") -> list[tuple[str, object]]:
    rows: list[tuple[str, object]] = []
    for key, value in sorted(payload.items()):
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_flatten(value, prefix=f"{name}."))
        elif isinstance(value, list):
            if len(value) <= 6 and all(
                not isinstance(v, (dict, list)) for v in value
            ):
                rows.append((name, ", ".join(_fmt(v) for v in value)))
            else:
                rows.append((name, f"[{len(value)} values]"))
        else:
            rows.append((name, value))
    return rows


_GROUP_TITLES = {
    "fig2": "Fig 2 — table update times",
    "fig3": "Fig 3 — parse cost on NoBench",
    "fig4": "Fig 4 — JSONPath popularity",
    "table3": "Table III — predictor comparison",
    "table4": "Table IV — window sizes",
    "fig11": "Fig 11 — cache budget sweep",
    "table5": "Table V — cached paths per query",
    "fig12": "Fig 12 — Q2/Q9 breakdown",
    "fig13": "Fig 13 — plan-generation overhead",
    "fig14": "Fig 14 — online LRU comparison",
    "fig15": "Fig 15 — parser comparison",
    "ablation": "Ablations",
    "scale": "Scale sweep",
    "obs": "Observability — tracing overhead and cache efficacy",
}


def _group_of(name: str) -> str:
    for prefix in _GROUP_TITLES:
        if name.startswith(prefix):
            return prefix
    return "other"


def render_report(results: dict[str, dict]) -> str:
    """Markdown with one section per experiment group.

    Summary files (``*_summary``) are rendered in full; per-point files
    are listed by name only to keep the report readable.
    """
    groups: dict[str, list[str]] = {}
    for name in results:
        groups.setdefault(_group_of(name), []).append(name)
    lines = ["# Benchmark results", ""]
    for group in sorted(groups, key=lambda g: list(_GROUP_TITLES).index(g) if g in _GROUP_TITLES else 99):
        title = _GROUP_TITLES.get(group, "Other results")
        lines.append(f"## {title}")
        lines.append("")
        names = groups[group]
        summaries = [n for n in names if n.endswith("_summary")] or names
        detail_only = [n for n in names if n not in summaries]
        for name in summaries:
            lines.append(f"### `{name}`")
            lines.append("")
            lines.append("| metric | value |")
            lines.append("|---|---|")
            for key, value in _flatten(results[name]):
                lines.append(f"| {key} | {_fmt(value)} |")
            lines.append("")
        if detail_only:
            listed = ", ".join(f"`{n}`" for n in detail_only)
            lines.append(f"Per-point files: {listed}")
            lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    directory = argv[0] if argv else "benchmarks/results"
    results = load_results(directory)
    if not results:
        print(f"no results found in {directory}", file=sys.stderr)
        return 1
    print(render_report(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
