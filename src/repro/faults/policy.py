"""Deterministic fault policies.

A :class:`FaultPolicy` is a seeded decision source consulted by
:class:`~repro.faults.fs.FaultyFileSystem` on every file-system
operation. It can inject:

* **transient read/write errors** (:class:`TransientFsError`) with a
  configurable rate, restricted to a path prefix;
* **byte-flip corruption** of read payloads, restricted to a path
  prefix (default: only the Maxson cache database, so raw data stays
  trustworthy and "degraded, never wrong" is provable);
* **injected latency** on reads;
* **torn appends** — only a prefix of the payload lands before the
  write fails, modelling a crash mid-write;
* **a process crash** (:class:`InjectedCrash`) after N successful
  writes under a prefix, used to kill a cache build mid-flight.

All randomness flows through one seeded ``random.Random`` behind a
lock, so a single-threaded run replays identically for a given seed,
and every injected event is counted for test assertions.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from ..storage.fs import TransientFsError

__all__ = [
    "InjectedCrash",
    "TornWriteError",
    "FaultPolicy",
    "parse_fault_profile",
]

#: Default target for corruption and cache-only error profiles.
CACHE_PATH_PREFIX = "/warehouse/maxson_cache"


class InjectedCrash(BaseException):
    """Simulated process death mid-operation.

    Deliberately a ``BaseException``: resilience code that catches
    ``Exception`` (build-failure handling, query retry) must *not*
    absorb a crash — it has to propagate like a kill signal so tests
    can exercise the restart/recovery path.
    """


class TornWriteError(TransientFsError):
    """An append failed after only a prefix of the payload landed."""


@dataclass
class FaultCounters:
    """How many of each fault kind the policy has injected."""

    read_errors: int = 0
    write_errors: int = 0
    corruptions: int = 0
    torn_appends: int = 0
    crashes: int = 0
    latency_spikes: int = 0

    def to_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class FaultPolicy:
    """Seeded fault-injection decisions over file-system operations."""

    seed: int = 0
    read_error_rate: float = 0.0
    """Probability a read raises :class:`TransientFsError`."""
    write_error_rate: float = 0.0
    """Probability a create/append raises :class:`TransientFsError`."""
    corrupt_rate: float = 0.0
    """Probability a read's payload gets one byte flipped."""
    torn_append_rate: float = 0.0
    """Probability an append lands only a prefix then fails."""
    read_latency_seconds: float = 0.0
    """Injected sleep before every read under ``error_path_prefix``."""
    latency_spike_rate: float = 0.0
    """Probability a read under ``error_path_prefix`` additionally
    sleeps ``latency_spike_seconds`` — the slow-split profile behind
    deadline/overload tests (a tail-latency model, not a constant
    slowdown)."""
    latency_spike_seconds: float = 0.0
    """Extra sleep injected when a latency spike fires."""
    error_path_prefix: str = "/"
    """Paths where transient errors and latency apply."""
    corrupt_path_prefix: str = CACHE_PATH_PREFIX
    """Paths where corruption applies (default: cache tables only)."""
    crash_after_writes: int | None = None
    """Raise :class:`InjectedCrash` on the Nth write under
    ``crash_path_prefix`` (1-based); fires once, then disarms."""
    crash_path_prefix: str = CACHE_PATH_PREFIX
    counters: FaultCounters = field(default_factory=FaultCounters)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._writes_seen = 0
        self._crashed = False

    # ------------------------------------------------------------------
    # decision points, called by FaultyFileSystem
    # ------------------------------------------------------------------
    def on_read(self, path: str) -> None:
        """Latency + transient-error injection before a read executes."""
        if not path.startswith(self.error_path_prefix):
            return
        if self.read_latency_seconds > 0:
            time.sleep(self.read_latency_seconds)
        with self._lock:
            spike = (
                self.latency_spike_rate > 0
                and self.latency_spike_seconds > 0
                and self._rng.random() < self.latency_spike_rate
            )
            if spike:
                self.counters.latency_spikes += 1
            inject = (
                self.read_error_rate > 0
                and self._rng.random() < self.read_error_rate
            )
            if inject:
                self.counters.read_errors += 1
        if spike:
            time.sleep(self.latency_spike_seconds)
        if inject:
            raise TransientFsError(f"injected transient read error: {path}")

    def on_write(self, path: str) -> None:
        """Crash trigger + transient-error injection before a write."""
        crash = False
        inject = False
        with self._lock:
            if (
                self.crash_after_writes is not None
                and not self._crashed
                and path.startswith(self.crash_path_prefix)
            ):
                self._writes_seen += 1
                if self._writes_seen >= self.crash_after_writes:
                    self._crashed = True
                    self.counters.crashes += 1
                    crash = True
            if not crash and path.startswith(self.error_path_prefix):
                inject = (
                    self.write_error_rate > 0
                    and self._rng.random() < self.write_error_rate
                )
                if inject:
                    self.counters.write_errors += 1
        if crash:
            raise InjectedCrash(f"injected crash on write #{self._writes_seen}: {path}")
        if inject:
            raise TransientFsError(f"injected transient write error: {path}")

    def corrupt(self, path: str, chunk: bytes) -> bytes:
        """Possibly flip one byte of a read payload."""
        if not chunk or not path.startswith(self.corrupt_path_prefix):
            return chunk
        with self._lock:
            if self.corrupt_rate <= 0 or self._rng.random() >= self.corrupt_rate:
                return chunk
            position = self._rng.randrange(len(chunk))
            self.counters.corruptions += 1
        mutated = bytearray(chunk)
        mutated[position] ^= 0xFF
        return bytes(mutated)

    def torn_length(self, path: str, length: int) -> int | None:
        """Length of the prefix that lands if this append tears, else None."""
        if length == 0 or not path.startswith(self.error_path_prefix):
            return None
        with self._lock:
            if (
                self.torn_append_rate <= 0
                or self._rng.random() >= self.torn_append_rate
            ):
                return None
            self.counters.torn_appends += 1
            return self._rng.randrange(length)


_PROFILE_KEYS = {
    "seed": ("seed", int),
    "read_error": ("read_error_rate", float),
    "write_error": ("write_error_rate", float),
    "corrupt": ("corrupt_rate", float),
    "torn_append": ("torn_append_rate", float),
    "latency": ("read_latency_seconds", float),
    "spike_rate": ("latency_spike_rate", float),
    "spike_seconds": ("latency_spike_seconds", float),
    "error_prefix": ("error_path_prefix", str),
    "corrupt_prefix": ("corrupt_path_prefix", str),
    "crash_after": ("crash_after_writes", int),
    "crash_prefix": ("crash_path_prefix", str),
}


def parse_fault_profile(spec: str) -> FaultPolicy:
    """Build a :class:`FaultPolicy` from a ``key=value,...`` spec.

    Example: ``"corrupt=0.2,read_error=0.05,seed=7"``. Recognised keys:
    seed, read_error, write_error, corrupt, torn_append, latency,
    spike_rate, spike_seconds, error_prefix, corrupt_prefix,
    crash_after, crash_prefix.
    """
    kwargs: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, raw = part.partition("=")
        key = key.strip()
        if key not in _PROFILE_KEYS:
            raise ValueError(
                f"unknown fault-profile key {key!r}; "
                f"expected one of {sorted(_PROFILE_KEYS)}"
            )
        attr, cast = _PROFILE_KEYS[key]
        try:
            kwargs[attr] = cast(raw.strip())
        except ValueError as exc:
            raise ValueError(f"bad value for fault-profile key {key!r}: {raw!r}") from exc
    return FaultPolicy(**kwargs)  # type: ignore[arg-type]
