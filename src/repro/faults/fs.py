"""A fault-injecting file system.

:class:`FaultyFileSystem` is a drop-in :class:`~repro.storage.fs.BlockFileSystem`
whose reads and writes pass through a :class:`~repro.faults.policy.FaultPolicy`
first. Swapping it in under a session/catalog subjects the *whole* stack
— cache builds, cache reads, raw scans, the build journal — to
deterministic corruption, transient errors, torn appends and crashes,
without any component knowing it is being tested.

The policy is a mutable attribute: construct the file system quiet
(default no-fault policy), load tables, then arm the real profile so
fixture data is never corrupted at load time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.fs import BlockFileSystem, FileStatus
from .policy import FaultPolicy, TornWriteError

__all__ = ["FaultyFileSystem"]


@dataclass
class FaultyFileSystem(BlockFileSystem):
    """BlockFileSystem with policy-driven fault injection."""

    policy: FaultPolicy = field(default_factory=FaultPolicy)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def create(self, path: str, data: bytes) -> FileStatus:
        self.policy.on_write(path)
        return super().create(path, data)

    def append(self, path: str, data: bytes) -> FileStatus:
        self.policy.on_write(path)
        torn = self.policy.torn_length(path, len(data))
        if torn is not None:
            # The prefix lands (the file is now torn), then the call fails
            # — exactly what a crash mid-append leaves behind.
            super().append(path, data[:torn])
            raise TornWriteError(
                f"injected torn append: {torn}/{len(data)} bytes landed on {path}"
            )
        return super().append(path, data)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        self.policy.on_read(path)
        chunk = super().read(path, offset, length)
        return self.policy.corrupt(path, chunk)
