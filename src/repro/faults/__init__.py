"""Deterministic fault injection for the Maxson stack.

``repro.faults`` provides the adversary the robustness layer is tested
against: a seeded :class:`FaultPolicy` deciding *when* to misbehave and
a :class:`FaultyFileSystem` applying those decisions to every read,
write and append. Profiles are parseable from CLI strings
(:func:`parse_fault_profile`) so ``replay-serve --fault-profile`` can
run whole replays under corruption, transient errors and mid-build
crashes — and prove the answers stay row-identical to the fault-free
baseline.
"""

from .fs import FaultyFileSystem
from .policy import (
    CACHE_PATH_PREFIX,
    FaultCounters,
    FaultPolicy,
    InjectedCrash,
    TornWriteError,
    parse_fault_profile,
)

__all__ = [
    "CACHE_PATH_PREFIX",
    "FaultCounters",
    "FaultPolicy",
    "FaultyFileSystem",
    "InjectedCrash",
    "TornWriteError",
    "parse_fault_profile",
]
