"""Command-line interface for the Maxson reproduction.

Subcommands::

    python -m repro.cli analyze    # workload analysis report (paper SSII)
    python -m repro.cli predict    # train a predictor, report P/R/F1
    python -m repro.cli demo       # run a query with and without Maxson
    python -m repro.cli explain    # EXPLAIN ANALYZE one Table II query
    python -m repro.cli bench-cache  # scoring vs random vs no-cache sweep
    python -m repro.cli replay-serve # concurrent server replay + status

All commands operate on the in-memory simulator and are seeded, so runs
are reproducible; they exist to make the system explorable without
writing code.
"""

from __future__ import annotations

import argparse
import sys


def _build_trace(args):
    from .workload import SyntheticTrace, TraceConfig

    return SyntheticTrace(
        TraceConfig(
            days=args.days,
            users=args.users,
            tables=args.tables,
            seed=args.seed,
        )
    )


def cmd_analyze(args) -> int:
    from .workload import analyze, format_report

    trace = _build_trace(args)
    print(format_report(analyze(trace)))
    return 0


def cmd_predict(args) -> int:
    from .core import JsonPathCollector, JsonPathPredictor, PredictorConfig

    trace = _build_trace(args)
    collector = JsonPathCollector()
    collector.ingest_trace(trace)
    split = int(args.days * 0.8)
    train_days = list(range(args.window + 1, split))
    eval_days = list(range(split, args.days - 1))
    predictor = JsonPathPredictor(
        PredictorConfig(
            model=args.model, window_days=args.window, epochs=args.epochs
        )
    )
    predictor.fit(collector, train_days)
    prf = predictor.evaluate(collector, eval_days)
    print(
        f"model={args.model} window={args.window}d "
        f"precision={prf.precision:.3f} recall={prf.recall:.3f} "
        f"f1={prf.f1:.3f}"
    )
    return 0


def cmd_demo(args) -> int:
    from .core import MaxsonSystem
    from .workload import build_queries
    from .workload.tables import DocumentFactory, TABLE_SPECS

    system = MaxsonSystem.for_demo(rows_per_table=args.rows)
    system.session.execution_mode = args.execution_mode
    if args.scan_workers is not None:
        system.session.scan_workers = args.scan_workers
    if args.worker_backend is not None:
        system.session.worker_backend = args.worker_backend
    scale = max(1, 10_000 // args.rows)
    factories = {
        s.query_id: DocumentFactory(s, metric_scale=scale) for s in TABLE_SPECS
    }
    queries = build_queries(factories)
    query = queries[args.query.upper()]
    baseline = system.baseline_sql(query.sql)
    system.cache_paths_directly(
        [
            __import__("repro.workload", fromlist=["PathKey"]).PathKey(
                query.database, query.table, query.column, path
            )
            for path in query.paths
        ],
        budget_bytes=1 << 40,
    )
    cached = system.sql(query.sql)
    assert sorted(map(str, cached.rows)) == sorted(map(str, baseline.rows))
    b, c = baseline.metrics, cached.metrics
    print(f"query {args.query.upper()}: {len(query.paths)} JSONPaths")
    print(
        f"  baseline: {b.total_seconds:7.3f}s "
        f"(parse {b.parse_fraction:5.1%}, {b.bytes_read:,} bytes)"
    )
    print(
        f"  maxson:   {c.total_seconds:7.3f}s "
        f"(parse {c.parse_fraction:5.1%}, {c.bytes_read:,} bytes)"
    )
    print(f"  speedup:  {b.total_seconds / max(c.total_seconds, 1e-9):.1f}x")
    return 0


def cmd_explain(args) -> int:
    """EXPLAIN ANALYZE one Table II query, cold and (optionally) cached."""
    from .core import MaxsonSystem
    from .workload import PathKey, build_queries
    from .workload.tables import DocumentFactory, TABLE_SPECS

    system = MaxsonSystem.for_demo(rows_per_table=args.rows)
    if args.scan_workers is not None:
        system.session.scan_workers = args.scan_workers
    if args.worker_backend is not None:
        system.session.worker_backend = args.worker_backend
    scale = max(1, 10_000 // args.rows)
    factories = {
        s.query_id: DocumentFactory(s, metric_scale=scale) for s in TABLE_SPECS
    }
    queries = build_queries(factories)
    query = queries[args.query.upper()]
    if args.cached:
        system.cache_paths_directly(
            [
                PathKey(query.database, query.table, query.column, path)
                for path in query.paths
            ],
            budget_bytes=1 << 40,
        )
    print(system.explain_analyze(query.sql, execution_mode=args.execution_mode))
    return 0


def cmd_bench_cache(args) -> int:
    from .core import MaxsonConfig, MaxsonSystem, PredictorConfig
    from .engine import Session
    from .storage import BlockFileSystem
    from .workload import build_queries, load_tables

    session = Session(fs=BlockFileSystem())
    factories = load_tables(session.catalog, rows_per_table=args.rows, days=3)
    queries = build_queries(factories)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )
    for query in queries.values():
        planned = session.compile(query.sql)
        for day in range(3):
            for _ in range(2):
                system.collector.record_planned(day, planned.referenced_json_paths)
    system.current_day = 2
    candidates = system.collector.universe
    total = sum(
        system.scoring.measure(k).estimated_total_bytes for k in candidates
    )

    def run_all():
        return sum(
            system.sql(q.sql).metrics.total_seconds for q in queries.values()
        )

    system.cacher.drop_all()
    base = sum(
        system.baseline_sql(q.sql).metrics.total_seconds
        for q in queries.values()
    )
    print(f"{'budget':>8} {'strategy':>9} {'cached':>7} {'seconds':>9} {'speedup':>8}")
    print(f"{'none':>8} {'-':>9} {0:7d} {base:9.2f} {1.0:8.1f}x")
    for fraction in (0.25, 0.5, 0.75, 1.0):
        for strategy in ("score", "random"):
            report = system.cache_paths_directly(
                candidates,
                budget_bytes=int(total * fraction),
                strategy=strategy,
            )
            seconds = run_all()
            print(
                f"{fraction:7.0%} {strategy:>9} {len(report.selected):7d} "
                f"{seconds:9.2f} {base / max(seconds, 1e-9):8.1f}x"
            )
    return 0


def _cluster_server_kwargs(args, admission_timeout) -> dict:
    """The ServerConfig kwargs each shard runs with (JSON-safe dict)."""
    return {
        "max_workers": args.concurrency,
        "per_tenant_limit": max(1, args.concurrency // 2),
        "queue_capacity": args.queue_capacity,
        "admission_timeout_seconds": admission_timeout,
        "default_deadline_ms": args.deadline_ms,
        "memory_soft_limit_bytes": args.memory_soft_limit_bytes,
        "drain_timeout_seconds": args.drain_timeout,
        "refresh_interval_seconds": args.refresh_interval,
        "max_query_retries": args.retries,
        "scan_workers": args.scan_workers,
        "worker_backend": args.worker_backend,
        "plan_cache_entries": args.plan_cache_entries,
        "result_cache": True if args.result_cache else None,
        "cache_budget_bytes": args.cache_budget_bytes,
        "system_tables": args.system_tables,
        "telemetry_budget_bytes": args.telemetry_budget_bytes,
    }


def _cmd_replay_serve_cluster(args, admission_timeout) -> int:
    """The ``--shards N`` path: same replay, routed through the cluster."""
    from .cluster import ClusterRouter, ShardSpec
    from .cluster.replay import replay_cluster
    from .cluster.shard import spec_queries
    from .server import build_replay_workload

    spec = ShardSpec(
        rows_per_table=args.rows,
        days=args.days,
        fault_profile=args.fault_profile,
        model=args.model,
        execution_mode=args.execution_mode,
        build_workers=args.build_workers,
        server=_cluster_server_kwargs(args, admission_timeout),
    )
    queries = spec_queries(spec)
    requests = build_replay_workload(
        queries,
        days=args.days,
        per_day=args.per_day,
        tenants=args.tenants,
        seed=args.seed,
    )
    baseline = None
    oracle_server = None
    if args.verify:
        # One fault-free in-process warehouse is the row oracle for every
        # shard (they all built the same deterministic tables).
        from .cluster.shard import build_shard_server

        oracle = build_shard_server(
            ShardSpec(
                rows_per_table=args.rows,
                days=args.days,
                model=args.model,
                server={"max_workers": 1},
            )
        )
        oracle_system, oracle_server = oracle

        def baseline(sql):
            return sorted(map(str, oracle_system.baseline_sql(sql).rows))

    with ClusterRouter(args.shards, spec=spec) as router:
        print(
            f"cluster up: {args.shards} shards "
            f"(reaped {router.reaped_shm_segments} orphan SHM segments)"
        )
        report = replay_cluster(router, requests, baseline=baseline)
        print(
            f"replayed {report.requests} requests over {report.days} days "
            f"across {report.shards} shards "
            f"({report.completed} completed, {report.failed} failed, "
            f"{report.shed} shed, {report.deadline_exceeded} "
            f"deadline-exceeded, {report.crash_failed} crash-failed) "
            f"in {report.wall_seconds:.2f}s"
        )
        per_shard = ", ".join(
            f"shard{sid}={n}"
            for sid, n in sorted(report.per_shard_completed.items())
        )
        print(f"per-shard completions: {per_shard or 'none'}")
        meta = report.metadata_cache
        print(
            f"metadata cache: {meta['hits']} hits / {meta['misses']} misses "
            f"(hit rate {meta['hit_rate']:.2f}, "
            f"{meta['invalidations']} invalidations)"
        )
        if args.verify:
            print(
                f"verified {report.verified} results against the plain "
                f"engine ({report.mismatched} mismatched)"
            )
        exit_code = 0
        if args.system_tables:
            audit = router.audit_system_queries()
            breakdown = ", ".join(
                f"{status}={n}"
                for status, n in sorted(audit["totals"].items())
            )
            print(f"system.queries (all shards): {breakdown}")
            for sid, by_status in sorted(audit["per_shard"].items()):
                shard_line = ", ".join(
                    f"{status}={n}" for status, n in sorted(by_status.items())
                )
                print(f"  shard {sid}: {shard_line or 'empty'}")
            accounted = (
                report.completed
                + report.failed
                + report.shed
                + report.deadline_exceeded
                + report.cancelled
            )
            if audit["total_rows"] != accounted:
                print(
                    f"system.queries audit FAILED: {audit['total_rows']} "
                    f"rows vs {accounted} accounted requests"
                )
                exit_code = 1
            else:
                print(
                    f"audit: {audit['total_rows']} query rows vs "
                    f"{accounted} accounted requests (match)"
                )
        if args.metrics:
            print("== Prometheus exposition (aggregated) ==")
            print(router.metrics_text(), end="")
    if args.verify and oracle_server is not None:
        oracle_server.shutdown(wait=False)
    if report.failed or report.completed == 0:
        return 1
    if args.verify and report.mismatched:
        return 1
    return exit_code


def cmd_replay_serve(args) -> int:
    from .core import MaxsonConfig, MaxsonSystem, PredictorConfig
    from .engine import Session
    from .faults import FaultPolicy, FaultyFileSystem, parse_fault_profile
    from .server import MaxsonServer, ServerConfig, build_replay_workload, replay
    from .workload import build_queries, load_tables

    admission_timeout = args.admission_timeout
    if args.max_queue_wait_ms is not None:
        admission_timeout = args.max_queue_wait_ms / 1000.0
    if args.shards > 1:
        return _cmd_replay_serve_cluster(args, admission_timeout)
    session = None
    if args.fault_profile:
        # Quiet policy while fixtures load; the profile arms afterwards
        # so raw data on disk is intact and the baseline is trustworthy.
        session = Session(fs=FaultyFileSystem(policy=FaultPolicy()))
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(
            predictor=PredictorConfig(model=args.model),
            execution_mode=args.execution_mode,
            build_workers=args.build_workers,
        ),
    )
    factories = load_tables(
        system.catalog, rows_per_table=args.rows, days=args.days
    )
    queries = build_queries(factories)
    if args.fault_profile:
        system.session.fs.policy = parse_fault_profile(args.fault_profile)
    config = ServerConfig(
        max_workers=args.concurrency,
        per_tenant_limit=max(1, args.concurrency // 2),
        queue_capacity=args.queue_capacity,
        admission_timeout_seconds=admission_timeout,
        default_deadline_ms=args.deadline_ms,
        memory_soft_limit_bytes=args.memory_soft_limit_bytes,
        drain_timeout_seconds=args.drain_timeout,
        refresh_interval_seconds=args.refresh_interval,
        max_query_retries=args.retries,
        scan_workers=args.scan_workers,
        worker_backend=args.worker_backend,
        plan_cache_entries=args.plan_cache_entries,
        result_cache=True if args.result_cache else None,
        cache_budget_bytes=args.cache_budget_bytes,
        trace_dir=args.trace_dir or None,
        slow_query_seconds=args.slow_query_ms / 1000.0,
        log_file=args.log_json or None,
        log_all_queries=bool(args.log_json),
        system_tables=args.system_tables,
        telemetry_budget_bytes=args.telemetry_budget_bytes,
    )
    with MaxsonServer(system, config) as server:
        requests = build_replay_workload(
            queries,
            days=args.days,
            per_day=args.per_day,
            tenants=args.tenants,
            seed=args.seed,
        )
        report = replay(server, requests, verify=args.verify)
        status = report.status
        print(
            f"replayed {report.requests} requests over {report.days} days "
            f"({report.completed} completed, {report.failed} failed, "
            f"{report.shed} shed, {report.deadline_exceeded} deadline-exceeded) "
            f"in {report.wall_seconds:.2f}s"
        )
        if args.verify:
            print(
                f"verified {report.verified} results against the plain "
                f"engine ({report.mismatched} mismatched)"
            )
        if args.fault_profile:
            print(f"injected faults: {system.session.fs.policy.counters.to_dict()}")
        print(status.format())
        if args.trace_dir:
            trace = status.observability.get("trace", {})
            print(
                f"traces: {trace.get('traces_written', 0)} traces "
                f"({trace.get('spans_written', 0)} spans) -> "
                f"{trace.get('path', args.trace_dir)}"
            )
        if args.system_tables:
            audit = server.system.session.sql(
                "SELECT status, count(*) AS n FROM system.queries "
                "GROUP BY status"
            )
            breakdown = ", ".join(
                f"{row['status']}={row['n']}"
                for row in sorted(audit.rows, key=lambda r: r["status"])
            )
            print(f"system.queries: {breakdown}")
            total = sum(row["n"] for row in audit.rows)
            accounted = (
                report.completed
                + report.failed
                + report.shed
                + report.deadline_exceeded
                + report.cancelled
            )
            if total != accounted:
                print(
                    f"system.queries audit FAILED: {total} rows vs "
                    f"{accounted} accounted requests"
                )
                return 1
        if args.metrics:
            print("== Prometheus exposition ==")
            print(server.metrics_text(), end="")
    if report.failed or report.completed == 0:
        return 1
    if args.verify and report.mismatched:
        return 1
    return 0


def _serve_system_tables_replay(args):
    """A short seeded replay with system tables on: the shared setup of
    ``repro incidents`` and ``repro query-history``. Returns the live
    server (telemetry queryable) and the replay report."""
    from .core import MaxsonConfig, MaxsonSystem, PredictorConfig
    from .server import MaxsonServer, ServerConfig, build_replay_workload, replay
    from .workload import build_queries, load_tables

    system = MaxsonSystem(
        config=MaxsonConfig(predictor=PredictorConfig(model="always"))
    )
    factories = load_tables(
        system.catalog, rows_per_table=args.rows, days=args.days
    )
    queries = build_queries(factories)
    config = ServerConfig(
        max_workers=4,
        system_tables=True,
        slow_query_seconds=args.slow_query_ms / 1000.0,
        scan_workers=args.scan_workers,
        worker_backend=args.worker_backend,
    )
    server = MaxsonServer(system, config)
    requests = build_replay_workload(
        queries,
        days=args.days,
        per_day=args.per_day,
        tenants=args.tenants,
        seed=args.seed,
    )
    report = replay(server, requests)
    return server, report


def _print_rows(header: list[str], rows: list[tuple]) -> None:
    widths = [
        max(len(header[i]), *(len(str(row[i])) for row in rows))
        if rows
        else len(header[i])
        for i in range(len(header))
    ]
    print("  ".join(name.ljust(widths[i]) for i, name in enumerate(header)))
    for row in rows:
        print(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )


def cmd_incidents(args) -> int:
    """Replay a workload, then read the flight recorder back via SQL."""
    import json

    server, report = _serve_system_tables_replay(args)
    try:
        result = server.system.session.sql(
            "SELECT ts, query_id, kind, tenant, seconds, fingerprint, payload "
            "FROM system.incidents"
        )
        rows = sorted(result.rows, key=lambda r: r["ts"] or 0.0)
        print(
            f"{len(rows)} incidents recorded over {report.requests} "
            f"replayed requests ({report.completed} completed)"
        )
        shown = rows[-args.limit :]
        _print_rows(
            ["ts", "query_id", "kind", "tenant", "seconds", "fingerprint"],
            [
                (
                    f"{r['ts']:.3f}",
                    r["query_id"],
                    r["kind"],
                    r["tenant"],
                    f"{r['seconds']:.4f}",
                    (r["fingerprint"] or "")[:48],
                )
                for r in shown
            ],
        )
        if shown and args.detail:
            payload = json.loads(shown[-1]["payload"])
            print("\n== most recent incident ==")
            print(f"query_id: {payload.get('query_id')}")
            print(f"kind:     {payload.get('kind')}")
            print(f"sql:      {payload.get('sql')}")
            print(f"breaker:  {payload.get('breaker')}")
            print(f"watchdog: {payload.get('watchdog')}")
            if payload.get("plan"):
                print("physical plan:")
                print(payload["plan"])
    finally:
        server.shutdown()
    return 0


def cmd_query_history(args) -> int:
    """Replay a workload, then audit it from ``system.queries`` alone."""
    server, report = _serve_system_tables_replay(args)
    try:
        audit = server.system.session.sql(
            "SELECT status, count(*) AS n FROM system.queries GROUP BY status"
        )
        breakdown = ", ".join(
            f"{row['status']}={row['n']}"
            for row in sorted(audit.rows, key=lambda r: r["status"])
        )
        print(
            f"replayed {report.requests} requests; "
            f"system.queries says: {breakdown}"
        )
        result = server.system.session.sql(
            "SELECT ts, query_id, tenant, status, seconds, backend, "
            "plan_cache FROM system.queries"
        )
        rows = sorted(result.rows, key=lambda r: r["ts"] or 0.0)
        _print_rows(
            [
                "ts",
                "query_id",
                "tenant",
                "status",
                "seconds",
                "backend",
                "plan_cache",
            ],
            [
                (
                    f"{r['ts']:.3f}",
                    r["query_id"],
                    r["tenant"],
                    r["status"],
                    f"{r['seconds']:.4f}",
                    r["backend"],
                    r["plan_cache"] or "",
                )
                for r in rows[-args.limit :]
            ],
        )
        total = len(result.rows)
        accounted = (
            report.completed
            + report.failed
            + report.shed
            + report.deadline_exceeded
            + report.cancelled
        )
        match = total == accounted
        print(
            f"audit: {total} query rows vs {accounted} accounted requests "
            f"({'match' if match else 'MISMATCH'})"
        )
    finally:
        server.shutdown()
    return 0 if match else 1


def cmd_report(args) -> int:
    from .reporting import main as report_main

    return report_main([args.results])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Maxson reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_args(p):
        p.add_argument("--days", type=int, default=42)
        p.add_argument("--users", type=int, default=24)
        p.add_argument("--tables", type=int, default=14)
        p.add_argument("--seed", type=int, default=11)

    p_analyze = sub.add_parser("analyze", help="workload analysis report")
    add_trace_args(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_predict = sub.add_parser("predict", help="train and evaluate a predictor")
    add_trace_args(p_predict)
    p_predict.add_argument(
        "--model",
        default="lstm_crf",
        choices=["lr", "svm", "mlp", "lstm", "lstm_crf", "oracle", "always"],
    )
    p_predict.add_argument("--window", type=int, default=7)
    p_predict.add_argument("--epochs", type=int, default=15)
    p_predict.set_defaults(func=cmd_predict)

    p_demo = sub.add_parser("demo", help="run one Table II query both ways")
    p_demo.add_argument("--query", default="Q2", help="Q1..Q10")
    p_demo.add_argument("--rows", type=int, default=600)
    p_demo.add_argument(
        "--execution-mode",
        default="batch",
        choices=["batch", "row"],
        help="engine path: vectorized batches or the row interpreter",
    )
    p_demo.add_argument(
        "--scan-workers",
        type=int,
        default=None,
        help="morsel workers per query (file splits execute concurrently; "
        "1 = serial, same code path inline)",
    )
    p_demo.add_argument(
        "--worker-backend",
        default=None,
        choices=["thread", "process"],
        help="morsel worker backend: GIL-shared threads or spawned "
        "processes with shared-memory batch transport",
    )
    p_demo.set_defaults(func=cmd_demo)

    p_explain = sub.add_parser(
        "explain",
        help="EXPLAIN ANALYZE one Table II query (annotated actual plan)",
    )
    p_explain.add_argument("--query", default="Q2", help="Q1..Q10")
    p_explain.add_argument("--rows", type=int, default=600)
    p_explain.add_argument(
        "--execution-mode",
        default="batch",
        choices=["batch", "row"],
        help="engine path: vectorized batches or the row interpreter",
    )
    p_explain.add_argument(
        "--cached",
        action="store_true",
        help="cache the query's JSONPaths first, so the plan shows the "
        "Maxson scan + value combiner",
    )
    p_explain.add_argument(
        "--scan-workers",
        type=int,
        default=None,
        help="morsel workers per query (traced plans parallelize only "
        "when > 1)",
    )
    p_explain.add_argument(
        "--worker-backend",
        default=None,
        choices=["thread", "process"],
        help="morsel worker backend: GIL-shared threads or spawned "
        "processes with shared-memory batch transport",
    )
    p_explain.set_defaults(func=cmd_explain)

    p_bench = sub.add_parser(
        "bench-cache", help="cache-budget sweep (Fig 11 style)"
    )
    p_bench.add_argument("--rows", type=int, default=600)
    p_bench.set_defaults(func=cmd_bench_cache)

    p_serve = sub.add_parser(
        "replay-serve",
        aliases=["serve"],
        help="replay a multi-day workload through the concurrent server",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run as an N-shard cluster: a router process consistent-hashes "
        "(tenant, table) onto N shard processes, each a full server over "
        "the warehouse with its own admission/deadline/breaker/cache "
        "budgets (default 1 = single-process)",
    )
    p_serve.add_argument("--concurrency", type=int, default=8)
    p_serve.add_argument("--days", type=int, default=3)
    p_serve.add_argument("--per-day", type=int, default=24)
    p_serve.add_argument("--tenants", type=int, default=4)
    p_serve.add_argument("--rows", type=int, default=200)
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument("--queue-capacity", type=int, default=64)
    p_serve.add_argument("--admission-timeout", type=float, default=30.0)
    p_serve.add_argument(
        "--max-queue-wait-ms",
        type=float,
        default=None,
        metavar="MS",
        help="bound on admission-queue wait (overrides --admission-timeout; "
        "queries shed with a retry-after hint when the queue cannot drain "
        "in time)",
    )
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-query deadline; timed-out queries raise "
        "DeadlineExceededError via cooperative cancellation and return "
        "no rows (default: no deadline)",
    )
    p_serve.add_argument(
        "--memory-soft-limit-bytes",
        type=int,
        default=None,
        metavar="N",
        help="soft cap on cache-ledger bytes; over it the watchdog shrinks "
        "the result/plan tiers, then sheds cold queries while pressure "
        "persists",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="graceful-shutdown drain window: in-flight queries get this "
        "long to finish before being cooperatively cancelled",
    )
    p_serve.add_argument("--refresh-interval", type=float, default=0.0)
    p_serve.add_argument(
        "--model",
        default="always",
        choices=["lr", "svm", "mlp", "lstm", "lstm_crf", "oracle", "always"],
        help="predictor driving the midnight cycles",
    )
    p_serve.add_argument(
        "--fault-profile",
        default="",
        metavar="SPEC",
        help="inject seeded faults, e.g. "
        "'corrupt=0.05,read_error=0.02,seed=3' "
        "(keys: seed, read_error, write_error, corrupt, torn_append, "
        "latency, spike_rate, spike_seconds, error_prefix, corrupt_prefix, "
        "crash_after, crash_prefix)",
    )
    p_serve.add_argument(
        "--verify",
        action="store_true",
        help="check every result against the plain engine (wrong-answer "
        "detector for fault runs)",
    )
    p_serve.add_argument(
        "--retries",
        type=int,
        default=6,
        help="transient-fault retries per query",
    )
    p_serve.add_argument(
        "--execution-mode",
        default="batch",
        choices=["batch", "row"],
        help="engine path: vectorized batches or the row interpreter",
    )
    p_serve.add_argument(
        "--build-workers",
        type=int,
        default=1,
        help="threads parsing raw files during cache builds "
        "(writes stay sequential)",
    )
    p_serve.add_argument(
        "--scan-workers",
        type=int,
        default=None,
        help="morsel workers per query: a scan's file splits execute "
        "concurrently on a shared pool (1 = serial)",
    )
    p_serve.add_argument(
        "--worker-backend",
        default=None,
        choices=["thread", "process"],
        help="morsel worker backend when --scan-workers > 1: GIL-shared "
        "threads (default) or spawned processes exchanging ColumnBatch "
        "payloads over shared memory",
    )
    p_serve.add_argument(
        "--plan-cache-entries",
        type=int,
        default=None,
        help="capacity of the recurring-query plan cache (0 disables)",
    )
    p_serve.add_argument(
        "--result-cache",
        action="store_true",
        help="enable the semantic result cache (canonicalized recurring "
        "statements replay their result set)",
    )
    p_serve.add_argument(
        "--cache-budget-bytes",
        type=int,
        default=None,
        metavar="N",
        help="unified byte budget shared by the result, plan and "
        "document cache tiers (default: unlimited)",
    )
    p_serve.add_argument(
        "--trace-dir",
        default="",
        metavar="DIR",
        help="export per-query and midnight span trees as JSONL under DIR",
    )
    p_serve.add_argument(
        "--metrics",
        action="store_true",
        help="print the Prometheus text exposition after the replay",
    )
    p_serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=0.0,
        help="log queries at or past this wall time as slow_query events",
    )
    p_serve.add_argument(
        "--log-json",
        default="",
        metavar="FILE",
        help="write structured NDJSON events (queries, cycles) to FILE",
    )
    p_serve.add_argument(
        "--system-tables",
        action="store_true",
        help="record the engine's own telemetry as queryable system.* "
        "NDJSON tables (queries, spans, cache_events, workers, incidents)",
    )
    p_serve.add_argument(
        "--telemetry-budget-bytes",
        type=int,
        default=8 * 1024 * 1024,
        metavar="N",
        help="byte budget for telemetry segments; oldest sealed segments "
        "rotate out above it",
    )
    p_serve.set_defaults(func=cmd_replay_serve)

    def add_systables_replay_args(p):
        p.add_argument("--rows", type=int, default=120)
        p.add_argument("--days", type=int, default=2)
        p.add_argument("--per-day", type=int, default=16)
        p.add_argument("--tenants", type=int, default=3)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--limit", type=int, default=10)
        p.add_argument(
            "--slow-query-ms",
            type=float,
            default=1.0,
            help="slow-query threshold driving flight-recorder capture",
        )
        p.add_argument("--scan-workers", type=int, default=None)
        p.add_argument(
            "--worker-backend", default=None, choices=["thread", "process"]
        )

    p_incidents = sub.add_parser(
        "incidents",
        help="replay a workload, then read the slow-query flight recorder "
        "back through SQL over system.incidents",
    )
    add_systables_replay_args(p_incidents)
    p_incidents.add_argument(
        "--detail",
        action="store_true",
        help="print the most recent incident's full record (plan, breaker, "
        "watchdog state)",
    )
    p_incidents.set_defaults(func=cmd_incidents)

    p_history = sub.add_parser(
        "query-history",
        help="replay a workload, then audit every request outcome from "
        "system.queries alone",
    )
    add_systables_replay_args(p_history)
    p_history.set_defaults(func=cmd_query_history)

    p_report = sub.add_parser(
        "report", help="render benchmarks/results as Markdown"
    )
    p_report.add_argument("--results", default="benchmarks/results")
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
