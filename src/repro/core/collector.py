"""JSONPath Collector (paper §III-B, Fig 5).

Collects historical query information: for every JSONPath it records the
location (database, table, column), the per-day access count, and the
query membership needed by the scoring function. The statistics store is
partitioned by date, mirroring the production statistics table.

Two ingestion routes exist:

* :meth:`JsonPathCollector.record_query` — explicit (day, paths) events,
  used when replaying the synthetic trace;
* :meth:`JsonPathCollector.record_planned` — a planned SQL query's
  ``referenced_json_paths``, used when collecting from the live engine.

The collector is shared mutable state between query threads and the
midnight cycle in server mode, so every method takes an internal lock:
ingestion from N concurrent clients never loses counts, and readers see
a consistent snapshot.
"""

from __future__ import annotations

import threading
from collections import Counter, defaultdict
from dataclasses import dataclass

from ..workload.trace import PathKey, SyntheticTrace

__all__ = ["QueryRecord", "JsonPathCollector"]


@dataclass(frozen=True)
class QueryRecord:
    """One collected query: the day it ran and the paths it parsed."""

    day: int
    paths: tuple[PathKey, ...]


class JsonPathCollector:
    """Date-partitioned JSONPath access statistics."""

    def __init__(self) -> None:
        self._daily_counts: dict[int, Counter] = defaultdict(Counter)
        self._queries: dict[int, list[QueryRecord]] = defaultdict(list)
        self._universe: set[PathKey] = set()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def record_query(self, day: int, paths: tuple[PathKey, ...] | list[PathKey]) -> None:
        """Record one executed query touching ``paths`` on ``day``."""
        paths = tuple(paths)
        with self._lock:
            self._daily_counts[day].update(paths)
            self._queries[day].append(QueryRecord(day=day, paths=paths))
            self._universe.update(paths)

    def record_planned(self, day: int, referenced: list[tuple[str, str, str, str]]) -> None:
        """Record a planned query's (db, table, column, path) references."""
        self.record_query(day, tuple(PathKey(*ref) for ref in referenced))

    def ingest_trace(self, trace: SyntheticTrace, up_to_day: int | None = None) -> None:
        """Bulk-load a synthetic trace (optionally only days < up_to_day)."""
        for query in trace.queries:
            if up_to_day is not None and query.day >= up_to_day:
                continue
            self.record_query(query.day, query.paths)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def days(self) -> list[int]:
        with self._lock:
            return sorted(self._daily_counts)

    @property
    def universe(self) -> list[PathKey]:
        with self._lock:
            return sorted(self._universe)

    def count(self, key: PathKey, day: int) -> int:
        with self._lock:
            return self._daily_counts.get(day, Counter()).get(key, 0)

    def counts_on(self, day: int) -> Counter:
        with self._lock:
            return Counter(self._daily_counts.get(day, Counter()))

    def count_sequence(self, key: PathKey, days: list[int]) -> list[int]:
        """Access counts of ``key`` over the given days (paper's Count
        sequence feature)."""
        return [self.count(key, day) for day in days]

    def queries_on(self, day: int) -> list[QueryRecord]:
        with self._lock:
            return list(self._queries.get(day, ()))

    def queries_between(self, first_day: int, last_day: int) -> list[QueryRecord]:
        """Records with first_day <= day <= last_day."""
        with self._lock:
            out: list[QueryRecord] = []
            for day in range(first_day, last_day + 1):
                out.extend(self._queries.get(day, ()))
            return out

    def mpjp_on(self, day: int, threshold: int = 2) -> set[PathKey]:
        """Paths parsed >= threshold times on ``day`` (the MPJP set)."""
        with self._lock:
            counts = self._daily_counts.get(day, Counter())
            return {key for key, value in counts.items() if value >= threshold}

    def mpjp_label(self, key: PathKey, day: int, threshold: int = 2) -> int:
        return int(self.count(key, day) >= threshold)

    def total_parses(self) -> Counter:
        """PathKey -> total parse count over all collected days."""
        with self._lock:
            out: Counter = Counter()
            for counts in self._daily_counts.values():
                out.update(counts)
            return out

    def duplicate_parse_fraction(self) -> float:
        """Fraction of parse traffic that is redundant (beyond the first
        parse of each path each day) — the paper's 89% headline measure."""
        with self._lock:
            total = 0
            redundant = 0
            for counts in self._daily_counts.values():
                for value in counts.values():
                    total += value
                    redundant += max(0, value - 1)
            return redundant / total if total else 0.0
