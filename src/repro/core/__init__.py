"""Maxson core: the paper's contribution.

Collector → Predictor → Scoring → Cacher → Plan rewriting → Value
Combiner → Predicate pushdown, plus the online-LRU comparator and the
:class:`MaxsonSystem` facade that runs the nightly cycle.
"""

from .cacher import (
    CACHE_DATABASE,
    CacheBuildReport,
    CacheEntry,
    CacheRegistry,
    JsonPathCacher,
    cache_field_name,
    cache_table_name,
    coerce_cache_value,
    mangle_path,
)
from .collector import JsonPathCollector, QueryRecord
from .combiner import CachedFieldRequest, MaxsonScanExec
from .features import FeatureConfig, FeatureExtractor, LabelledDataset
from .journal import JOURNAL_PATH, BuildJournal
from .maxson_parser import MaxsonPlanModifier, RewriteReport
from .online_cache import LruCache, OnlineCacheSimulator, OnlineCacheStats
from .predictor import MODEL_NAMES, JsonPathPredictor, PredictorConfig
from .pushdown import extract_cache_sarg
from .resilience import CacheCircuitBreaker, ResilienceStats, RetryPolicy
from .scoring import PathStats, ScoredPath, ScoringFunction
from .stats_store import META_DATABASE, StatsStore
from .system import MaxsonConfig, MaxsonSystem, MidnightReport

__all__ = [
    "JsonPathCollector",
    "QueryRecord",
    "FeatureConfig",
    "FeatureExtractor",
    "LabelledDataset",
    "JsonPathPredictor",
    "PredictorConfig",
    "MODEL_NAMES",
    "ScoringFunction",
    "ScoredPath",
    "PathStats",
    "JsonPathCacher",
    "CacheRegistry",
    "CacheEntry",
    "CacheBuildReport",
    "CACHE_DATABASE",
    "cache_table_name",
    "cache_field_name",
    "coerce_cache_value",
    "mangle_path",
    "BuildJournal",
    "JOURNAL_PATH",
    "CacheCircuitBreaker",
    "ResilienceStats",
    "RetryPolicy",
    "MaxsonPlanModifier",
    "RewriteReport",
    "MaxsonScanExec",
    "CachedFieldRequest",
    "extract_cache_sarg",
    "LruCache",
    "OnlineCacheSimulator",
    "OnlineCacheStats",
    "MaxsonConfig",
    "MaxsonSystem",
    "MidnightReport",
    "StatsStore",
    "META_DATABASE",
]
