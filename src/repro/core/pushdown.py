"""Predicate pushdown onto cache tables (paper §IV-F, Algorithm 3).

Because cached JSONPath values live in their own typed ORC columns, a
query predicate over a cached path can be evaluated against the cache
table's row-group min/max statistics. This module translates the
SARG-able conjuncts of a filter condition that reference
:class:`~repro.engine.expressions.CachedField` placeholders into a
:class:`~repro.storage.sargs.Sarg` over the cache table's *field names*.

The mask computed from that SARG is shared with the primary reader inside
:class:`~repro.core.combiner.MaxsonScanExec` (Algorithm 3 line 7), so both
the cache file and the raw file skip the same row groups.
"""

from __future__ import annotations

from ..engine.expressions import (
    Between,
    BinaryOp,
    CachedField,
    Expression,
    Literal,
    UnaryOp,
)
from ..storage.sargs import AndSarg, ComparisonSarg, Sarg, SargOp
from .combiner import CachedFieldRequest

__all__ = ["extract_cache_sarg"]

_OPS = {
    "=": SargOp.EQ,
    "<": SargOp.LT,
    "<=": SargOp.LE,
    ">": SargOp.GT,
    ">=": SargOp.GE,
}

_FLIP = {
    SargOp.EQ: SargOp.EQ,
    SargOp.LT: SargOp.GT,
    SargOp.LE: SargOp.GE,
    SargOp.GT: SargOp.LT,
    SargOp.GE: SargOp.LE,
}


def _split_conjuncts(expr: Expression) -> list[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _field_for(
    expr: Expression, requests: dict[str, CachedFieldRequest]
) -> str | None:
    """The cache-table column name if ``expr`` is a known CachedField."""
    if isinstance(expr, CachedField) and expr.env_key in requests:
        return requests[expr.env_key].entry.field_name
    return None


def _literal_value(expr: Expression) -> object | None:
    if isinstance(expr, Literal) and expr.value is not None:
        return expr.value
    return None


def _conjunct_to_sarg(
    conjunct: Expression, requests: dict[str, CachedFieldRequest]
) -> Sarg | None:
    if isinstance(conjunct, BinaryOp) and conjunct.op in _OPS:
        field = _field_for(conjunct.left, requests)
        literal = _literal_value(conjunct.right)
        op = _OPS[conjunct.op]
        if field is None:
            field = _field_for(conjunct.right, requests)
            literal = _literal_value(conjunct.left)
            op = _FLIP[op]
        if field is None or literal is None:
            return None
        return ComparisonSarg(field, op, literal)
    if isinstance(conjunct, Between):
        field = _field_for(conjunct.child, requests)
        low = _literal_value(conjunct.low)
        high = _literal_value(conjunct.high)
        if field is None or low is None or high is None:
            return None
        return AndSarg(
            (
                ComparisonSarg(field, SargOp.GE, low),
                ComparisonSarg(field, SargOp.LE, high),
            )
        )
    if isinstance(conjunct, UnaryOp) and conjunct.op in ("is null", "is not null"):
        field = _field_for(conjunct.child, requests)
        if field is None:
            return None
        op = SargOp.IS_NULL if conjunct.op == "is null" else SargOp.IS_NOT_NULL
        return ComparisonSarg(field, op)
    return None


def extract_cache_sarg(
    condition: Expression, cached_fields: list[CachedFieldRequest]
) -> Sarg | None:
    """SARG over cache-table columns for the pushable conjuncts of
    ``condition``; ``None`` when nothing is pushable."""
    requests = {request.env_key: request for request in cached_fields}
    sargs: list[Sarg] = []
    for conjunct in _split_conjuncts(condition):
        sarg = _conjunct_to_sarg(conjunct, requests)
        if sarg is not None:
            sargs.append(sarg)
    if not sargs:
        return None
    return sargs[0] if len(sargs) == 1 else AndSarg(tuple(sargs))
