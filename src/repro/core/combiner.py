"""Value Combiner (paper §IV-E, Algorithm 2) and the Maxson scan operator.

``MaxsonScanExec`` replaces the engine's ``ScanExec`` for tables with
cache hits. Per split (one file = one split, the alignment rule of
§IV-C):

* a **PrimaryReader** reads the surviving raw columns of raw file *i*;
* a **CacheReader** reads the requested cached fields of cache file *i*;
* the two value lists are stitched positionally into complete records —
  no join, because the cacher guaranteed identical row counts and order.

Special cases from Algorithm 2 are honoured: when one side needs no
columns the other side's values are returned directly (cache-only reads
are the cheap path the *relevance* score optimises for).

Predicate pushdown (Algorithm 3) plugs in here: an optional SARG over
cached fields is evaluated on the cache file's row-group statistics and
the resulting skip mask is shared with the primary reader when the file
is single-stripe (§IV-F's precondition).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.errors import ExecutionError
from ..engine.physical import ExecState, ScanExec
from ..storage.readers import OrcReader
from ..storage.sargs import Sarg
from .cacher import CACHE_DATABASE, CacheEntry

__all__ = ["CachedFieldRequest", "MaxsonScanExec"]


@dataclass(frozen=True)
class CachedFieldRequest:
    """One cached JSONPath this scan must surface.

    ``env_key`` is the row-environment key the matching
    :class:`~repro.engine.expressions.CachedField` placeholder reads.
    """

    entry: CacheEntry
    env_key: str


@dataclass
class MaxsonScanExec(ScanExec):
    """Scan that stitches raw columns with cached JSONPath values."""

    cached_fields: list[CachedFieldRequest] = field(default_factory=list)
    cache_sarg: Sarg | None = None
    """SARG over cached fields (pushed by Algorithm 3)."""
    share_mask_with_primary: bool = True

    def _label(self) -> str:
        cached = ", ".join(r.entry.field_name for r in self.cached_fields)
        sarg = " +cache_sarg" if self.cache_sarg else ""
        return (
            f"MaxsonScan {self.database}.{self.table} cols={self.columns} "
            f"cached=[{cached}]{sarg}"
        )

    # ------------------------------------------------------------------
    def execute(self, state: ExecState) -> list[dict]:
        if not self.cached_fields:
            return super().execute(state)
        started = time.perf_counter()
        cache_table = self.cached_fields[0].entry.cache_table
        for request in self.cached_fields:
            if request.entry.cache_table != cache_table:
                raise ExecutionError(
                    "cached fields of one scan must come from one cache table"
                )
        raw_files = state.catalog.table_files(self.database, self.table)
        cache_files = state.catalog.table_files(CACHE_DATABASE, cache_table)
        if len(raw_files) != len(cache_files):
            raise ExecutionError(
                f"cache misalignment: {len(raw_files)} raw files vs "
                f"{len(cache_files)} cache files for {self.database}.{self.table}"
            )
        field_names = [r.entry.field_name for r in self.cached_fields]
        env_keys = [r.env_key for r in self.cached_fields]
        rows: list[dict] = []
        for split_index in range(len(raw_files)):
            rows.extend(
                self._read_split(
                    state,
                    raw_files[split_index],
                    cache_files[split_index],
                    field_names,
                    env_keys,
                )
            )
        state.metrics.rows_scanned += len(rows)
        state.metrics.cache_hits += len(self.cached_fields)
        state.metrics.read_seconds += time.perf_counter() - started
        return rows

    # ------------------------------------------------------------------
    def _read_split(
        self,
        state: ExecState,
        raw_path: str,
        cache_path: str,
        field_names: list[str],
        env_keys: list[str],
    ) -> list[dict]:
        """Algorithm 2 for one (raw file, cache file) pair."""
        fs = state.catalog.fs
        cache_reader = OrcReader(
            fs, cache_path, columns=field_names, sarg=self.cache_sarg
        )

        if not self.columns:
            # "when one reader has no value to read, we will directly
            # return the value of the other reader" — the cache-only read.
            cache_result = cache_reader.read()
            state.metrics.bytes_read += cache_result.bytes_read
            state.metrics.row_groups_total += cache_result.row_groups_total
            state.metrics.row_groups_skipped += cache_result.row_groups_skipped
            return self._rows_from_cache(cache_result.columns, env_keys)

        primary_reader = OrcReader(
            fs, raw_path, columns=self.columns, sarg=self.sarg
        )
        can_align = (
            self.share_mask_with_primary
            and cache_reader.can_align_row_groups()
            and primary_reader.can_align_row_groups()
            and len(cache_reader.row_group_mask)
            == len(primary_reader.row_group_mask)
        )
        if can_align:
            # Algorithm 3 line 7: both readers skip exactly the row groups
            # eliminated by *either* side's SARG — the cache reader's skip
            # array is shared with the primary reader, and vice versa.
            combined = [
                a and b
                for a, b in zip(
                    cache_reader.row_group_mask, primary_reader.row_group_mask
                )
            ]
            cache_reader.share_row_group_mask(combined)
            primary_reader.share_row_group_mask(combined)
        else:
            # Cannot align (multi-stripe or layout mismatch): read both
            # sides fully; the residual filter preserves correctness.
            cache_reader = OrcReader(fs, cache_path, columns=field_names)
            primary_reader = OrcReader(fs, raw_path, columns=self.columns)
        cache_result = cache_reader.read()
        primary_result = primary_reader.read()
        for result in (cache_result, primary_result):
            state.metrics.bytes_read += result.bytes_read
            state.metrics.row_groups_total += result.row_groups_total
            state.metrics.row_groups_skipped += result.row_groups_skipped

        if primary_result.rows_read != cache_result.rows_read:
            raise ExecutionError(
                "value combiner row mismatch in split "
                f"{raw_path!r}: primary={primary_result.rows_read} "
                f"cache={cache_result.rows_read}"
            )

        raw_series = [primary_result.columns[name] for name in self.columns]
        cache_series = [cache_result.columns[name] for name in field_names]
        rows: list[dict] = []
        for i in range(primary_result.rows_read):
            # Stitch: place each value at its schema position (here, its
            # env key) to form the complete record.
            row: dict = {}
            for name, series in zip(self.columns, raw_series):
                row[name] = series[i]
                if self.alias:
                    row[f"{self.alias}.{name}"] = series[i]
            for env_key, series in zip(env_keys, cache_series):
                row[env_key] = series[i]
            rows.append(row)
        return rows

    def _rows_from_cache(
        self, columns: dict[str, list[object]], env_keys: list[str]
    ) -> list[dict]:
        field_names = [r.entry.field_name for r in self.cached_fields]
        series = [columns[name] for name in field_names]
        if not series:
            return []
        return [
            dict(zip(env_keys, values)) for values in zip(*series)
        ]

    def output_names(self) -> set[str]:
        names = super().output_names()
        names |= {r.env_key for r in self.cached_fields}
        return names
