"""Value Combiner (paper §IV-E, Algorithm 2) and the Maxson scan operator.

``MaxsonScanExec`` replaces the engine's ``ScanExec`` for tables with
cache hits. Per split (one file = one split, the alignment rule of
§IV-C):

* a **PrimaryReader** reads the surviving raw columns of raw file *i*;
* a **CacheReader** reads the requested cached fields of cache file *i*;
* the two value lists are stitched positionally into complete records —
  no join, because the cacher guaranteed identical row counts and order.

Special cases from Algorithm 2 are honoured: when one side needs no
columns the other side's values are returned directly (cache-only reads
are the cheap path the *relevance* score optimises for).

Predicate pushdown (Algorithm 3) plugs in here: an optional SARG over
cached fields is evaluated on the cache file's row-group statistics and
the resulting skip mask is shared with the primary reader when the file
is single-stripe (§IV-F's precondition).

**Graceful degradation.** A cache file that cannot be read — missing,
misaligned with the raw table, transiently erroring, or failing its
stripe/footer checksum — never fails the query and never leaks garbage:
the affected split falls back to parsing the raw JSON column directly,
re-deriving exactly the values the cache would have held (same
extraction, same type coercion). The failure trips the system's circuit
breaker so subsequent queries skip the broken table at plan time until
its quarantine half-opens for a re-probe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.batch import ColumnBatch
from ..engine.errors import CatalogError, ExecutionError
from ..engine.physical import ExecState, ScanExec
from ..storage.fs import FsError
from ..storage.orc import CorruptStripeError, OrcError
from ..storage.readers import OrcReader, split_reader
from ..storage.sargs import Sarg
from .cacher import CACHE_DATABASE, CacheEntry, coerce_cache_value
from .extraction import ValueExtractor, path_format

__all__ = ["CachedFieldRequest", "MaxsonScanExec"]


@dataclass(frozen=True)
class CachedFieldRequest:
    """One cached JSONPath this scan must surface.

    ``env_key`` is the row-environment key the matching
    :class:`~repro.engine.expressions.CachedField` placeholder reads.
    """

    entry: CacheEntry
    env_key: str


@dataclass
class MaxsonScanExec(ScanExec):
    """Scan that stitches raw columns with cached JSONPath values."""

    cached_fields: list[CachedFieldRequest] = field(default_factory=list)
    cache_sarg: Sarg | None = None
    """SARG over cached fields (pushed by Algorithm 3)."""
    share_mask_with_primary: bool = True
    breaker: object = None
    """Optional :class:`~repro.core.resilience.CacheCircuitBreaker`."""
    resilience: object = None
    """Optional :class:`~repro.core.resilience.ResilienceStats`."""

    def _label(self) -> str:
        cached = ", ".join(r.entry.field_name for r in self.cached_fields)
        sarg = " +cache_sarg" if self.cache_sarg else ""
        return (
            f"MaxsonScan {self.database}.{self.table} cols={self.columns} "
            f"cached=[{cached}]{sarg}"
        )

    # ------------------------------------------------------------------
    def execute(self, state: ExecState) -> list[dict]:
        if not self.cached_fields:
            return super().execute(state)
        started = time.perf_counter()
        cache_table = self.cached_fields[0].entry.cache_table
        for request in self.cached_fields:
            if request.entry.cache_table != cache_table:
                raise ExecutionError(
                    "cached fields of one scan must come from one cache table"
                )
        raw_files = state.catalog.table_files(self.database, self.table)
        try:
            cache_files = state.catalog.table_files(CACHE_DATABASE, cache_table)
        except (CatalogError, FsError):
            cache_files = None
        field_names = [r.entry.field_name for r in self.cached_fields]
        env_keys = [r.env_key for r in self.cached_fields]
        rows: list[dict] = []
        fallback_splits = 0
        combine_span = (
            state.tracer.begin("combine", splits=len(raw_files))
            if state.tracer is not None
            else None
        )
        if cache_files is None or len(cache_files) != len(raw_files):
            # The cache table vanished or is file-misaligned (e.g. a
            # refresh died mid-append). Raw parsing answers the whole
            # scan; the breaker quarantines the table.
            self._note_cache_failure(cache_table, None)
            for raw_path in raw_files:
                state.check_cancelled()
                rows.extend(self._read_split_fallback(state, raw_path))
            fallback_splits = len(raw_files)
        else:
            for split_index in range(len(raw_files)):
                state.check_cancelled()
                try:
                    split_rows = self._read_split(
                        state,
                        raw_files[split_index],
                        cache_files[split_index],
                        field_names,
                        env_keys,
                    )
                except (FsError, OrcError, ExecutionError) as exc:
                    # Cache-side failure on this split only: transient fs
                    # error, checksum mismatch, corrupt file structure or
                    # a row-count mismatch. Degrade, never guess.
                    self._note_cache_failure(cache_table, exc)
                    fallback_splits += 1
                    split_rows = self._read_split_fallback(
                        state, raw_files[split_index]
                    )
                rows.extend(split_rows)
        if combine_span is not None:
            combine_span.attributes["fallback_splits"] = fallback_splits
            combine_span.attributes["degraded"] = bool(fallback_splits)
            state.tracer.end(combine_span)
        if fallback_splits:
            # Per-query degraded marker: the session's result cache
            # checks it to keep degraded answers out of admission.
            state.metrics.extra["degraded_splits"] = (
                state.metrics.extra.get("degraded_splits", 0) + fallback_splits
            )
            if self.resilience is not None:
                self.resilience.add("fallback_queries")
                self.resilience.add("fallback_splits", fallback_splits)
        else:
            state.metrics.cache_hits += len(self.cached_fields)
            if self.breaker is not None:
                # A fully-validated read: closes an open/half-open breaker
                # (the successful re-probe) and is a no-op otherwise.
                self.breaker.record_success(cache_table)
        state.metrics.rows_scanned += len(rows)
        state.metrics.read_seconds += time.perf_counter() - started
        return rows

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        """Columnar Value Combiner: stitch split columns, not rows.

        Same split loop, same per-split degradation contract as
        :meth:`execute` — a failing cache split falls back to raw parsing
        for that split only — but the stitched values flow through as
        columns, so no per-row dicts are built on the cached fast path.
        """
        if not self.cached_fields:
            return super().execute_batch(state)
        started = time.perf_counter()
        cache_table = self.cached_fields[0].entry.cache_table
        for request in self.cached_fields:
            if request.entry.cache_table != cache_table:
                raise ExecutionError(
                    "cached fields of one scan must come from one cache table"
                )
        raw_files = state.catalog.table_files(self.database, self.table)
        try:
            cache_files = state.catalog.table_files(CACHE_DATABASE, cache_table)
        except (CatalogError, FsError):
            cache_files = None
        field_names = [r.entry.field_name for r in self.cached_fields]
        env_keys = [r.env_key for r in self.cached_fields]

        names = list(self.columns)
        columns_out: dict[str, list] = {name: [] for name in self.columns}
        if self.alias:
            for name in self.columns:
                qualified = f"{self.alias}.{name}"
                columns_out[qualified] = columns_out[name]
                names.append(qualified)
        for env_key in env_keys:
            columns_out[env_key] = []
            names.append(env_key)
        length = 0
        fallback_splits = 0
        combine_span = (
            state.tracer.begin("combine", splits=len(raw_files))
            if state.tracer is not None
            else None
        )

        def extend(split_columns: dict, split_length: int) -> None:
            nonlocal length
            for name in self.columns:
                columns_out[name].extend(split_columns[name])
            for env_key in env_keys:
                columns_out[env_key].extend(split_columns[env_key])
            length += split_length

        if cache_files is None or len(cache_files) != len(raw_files):
            self._note_cache_failure(cache_table, None)
            for raw_path in raw_files:
                state.check_cancelled()
                extend(*self._fallback_columns(state, raw_path))
            fallback_splits = len(raw_files)
        else:
            for split_index in range(len(raw_files)):
                state.check_cancelled()
                try:
                    split_columns, split_length = self._split_columns(
                        state,
                        raw_files[split_index],
                        cache_files[split_index],
                        field_names,
                        env_keys,
                    )
                except (FsError, OrcError, ExecutionError) as exc:
                    self._note_cache_failure(cache_table, exc)
                    fallback_splits += 1
                    split_columns, split_length = self._fallback_columns(
                        state, raw_files[split_index]
                    )
                extend(split_columns, split_length)
        if combine_span is not None:
            combine_span.attributes["fallback_splits"] = fallback_splits
            combine_span.attributes["degraded"] = bool(fallback_splits)
            state.tracer.end(combine_span)
        if fallback_splits:
            # Per-query degraded marker: the session's result cache
            # checks it to keep degraded answers out of admission.
            state.metrics.extra["degraded_splits"] = (
                state.metrics.extra.get("degraded_splits", 0) + fallback_splits
            )
            if self.resilience is not None:
                self.resilience.add("fallback_queries")
                self.resilience.add("fallback_splits", fallback_splits)
        else:
            state.metrics.cache_hits += len(self.cached_fields)
            if self.breaker is not None:
                self.breaker.record_success(cache_table)
        state.metrics.rows_scanned += length
        state.metrics.read_seconds += time.perf_counter() - started
        return ColumnBatch(names, columns_out, length)

    # ------------------------------------------------------------------
    # morsel API: the same Value Combiner, one split at a time
    # ------------------------------------------------------------------
    def morsel_units(self, state: ExecState) -> list:
        """(raw file, cache file) pairs, one per split.

        The whole-scan decisions of :meth:`execute_batch` — cache-table
        consistency and file alignment — happen here on the coordinator,
        exactly once; a misaligned cache degrades every unit to raw
        parsing (``cache_path`` None) just like the serial path.
        """
        if not self.cached_fields:
            return super().morsel_units(state)
        cache_table = self.cached_fields[0].entry.cache_table
        for request in self.cached_fields:
            if request.entry.cache_table != cache_table:
                raise ExecutionError(
                    "cached fields of one scan must come from one cache table"
                )
        raw_files = state.catalog.table_files(self.database, self.table)
        try:
            cache_files = state.catalog.table_files(CACHE_DATABASE, cache_table)
        except (CatalogError, FsError):
            cache_files = None
        if cache_files is None or len(cache_files) != len(raw_files):
            self._note_cache_failure(cache_table, None)
            return [(raw_path, None) for raw_path in raw_files]
        return list(zip(raw_files, cache_files))

    def morsel_output_names(self) -> list[str]:
        names = super().morsel_output_names()
        names.extend(request.env_key for request in self.cached_fields)
        return names

    def run_morsel(self, state: ExecState, unit) -> tuple[ColumnBatch, bool]:
        """Algorithm 2 for one split, with split-local degraded fallback.

        Runs on a worker thread: only worker-local ``state`` and the
        thread-safe breaker/resilience objects are touched. The shared
        skip mask (Algorithm 3) is computed inside ``_split_columns``,
        once per split, and handed to both readers of this worker.
        """
        if not self.cached_fields:
            return super().run_morsel(state, unit)
        state.check_cancelled()
        started = time.perf_counter()
        raw_path, cache_path = unit
        cache_table = self.cached_fields[0].entry.cache_table
        field_names = [r.entry.field_name for r in self.cached_fields]
        env_keys = [r.env_key for r in self.cached_fields]
        fallback = False
        if cache_path is None:
            columns, length = self._fallback_columns(state, raw_path)
            fallback = True
        else:
            try:
                columns, length = self._split_columns(
                    state, raw_path, cache_path, field_names, env_keys
                )
            except (FsError, OrcError, ExecutionError) as exc:
                self._note_cache_failure(cache_table, exc)
                fallback = True
                columns, length = self._fallback_columns(state, raw_path)
        names = list(self.columns)
        out: dict[str, list] = {name: columns[name] for name in self.columns}
        if self.alias:
            for name in self.columns:
                qualified = f"{self.alias}.{name}"
                out[qualified] = out[name]
                names.append(qualified)
        for env_key in env_keys:
            out[env_key] = columns[env_key]
            names.append(env_key)
        state.metrics.rows_scanned += length
        state.metrics.read_seconds += time.perf_counter() - started
        return ColumnBatch(names, out, length), fallback

    def finish_morsels(self, state: ExecState, fallback_splits: int) -> None:
        """Whole-scan accounting, mirroring the serial combiner exactly:
        any degraded split marks the query degraded; a fully-validated
        scan counts its cache hits and closes the breaker."""
        if not self.cached_fields:
            return
        cache_table = self.cached_fields[0].entry.cache_table
        if fallback_splits:
            # Per-query degraded marker: the session's result cache
            # checks it to keep degraded answers out of admission.
            state.metrics.extra["degraded_splits"] = (
                state.metrics.extra.get("degraded_splits", 0) + fallback_splits
            )
            if self.resilience is not None:
                self.resilience.add("fallback_queries")
                self.resilience.add("fallback_splits", fallback_splits)
        else:
            state.metrics.cache_hits += len(self.cached_fields)
            if self.breaker is not None:
                self.breaker.record_success(cache_table)

    def _note_cache_failure(self, cache_table: str, exc: Exception | None) -> None:
        log = getattr(self, "failure_log", None)
        if log is not None:
            # Process-backend worker replica: breaker/resilience are
            # stripped (they hold coordinator locks), so the failure is
            # recorded for split-ordered replay on the coordinator.
            log.append(
                (cache_table, isinstance(exc, (CorruptStripeError, OrcError)))
            )
        if self.breaker is not None:
            self.breaker.record_failure(cache_table)
        if self.resilience is not None and isinstance(
            exc, (CorruptStripeError, OrcError)
        ):
            self.resilience.add("corruption_events")

    def replay_cache_failures(self, entries: list) -> None:
        """Coordinator-side replay of worker-recorded cache failures.

        ``entries`` is one split's ``failure_log``:
        ``(cache_table, is_corruption)`` tuples, replayed in split order
        so breaker trips and corruption counters match what the thread
        backend records while executing the same splits itself.
        """
        for cache_table, corruption in entries:
            if self.breaker is not None:
                self.breaker.record_failure(cache_table)
            if self.resilience is not None and corruption:
                self.resilience.add("corruption_events")

    # ------------------------------------------------------------------
    def _read_split_fallback(self, state: ExecState, raw_path: str) -> list[dict]:
        """Answer one split without its cache file: parse the raw column.

        Re-derives exactly the values the cache file would have held —
        same extraction, same :func:`coerce_cache_value` coercion — so a
        degraded query is row-identical to the cached one, just slower.
        """
        columns, length = self._fallback_columns(state, raw_path)
        return self._stitch_rows(columns, length)

    def _fallback_columns(
        self, state: ExecState, raw_path: str
    ) -> tuple[dict[str, list], int]:
        """Columnar core of the raw-parse fallback for one split."""
        read_columns = list(self.columns)
        formats_by_column: dict[str, set[str]] = {}
        for request in self.cached_fields:
            column = request.entry.key.column
            if column not in read_columns:
                read_columns.append(column)
            formats_by_column.setdefault(column, set()).add(
                path_format(request.entry.key.path)
            )
        reader = split_reader(
            state.catalog.fs, raw_path, columns=read_columns, sarg=self.sarg
        )
        result = reader.read()
        state.metrics.bytes_read += result.bytes_read
        state.metrics.row_groups_total += result.row_groups_total
        state.metrics.row_groups_skipped += result.row_groups_skipped
        series = {name: result.columns[name] for name in read_columns}
        extractor = ValueExtractor()
        columns: dict[str, list] = {
            name: series[name] for name in self.columns
        }
        env_series: dict[str, list] = {
            request.env_key: [] for request in self.cached_fields
        }
        parse_span = (
            state.tracer.begin(
                "parse", split=str(raw_path), degraded=True
            )
            if state.tracer is not None
            else None
        )
        for i in range(result.rows_read):
            if i % 256 == 0:
                state.check_cancelled()
            documents = {
                column: extractor.decode(series[column][i], formats)
                for column, formats in formats_by_column.items()
            }
            for request in self.cached_fields:
                value = extractor.evaluate(
                    documents[request.entry.key.column], request.entry.key.path
                )
                env_series[request.env_key].append(
                    coerce_cache_value(value, request.entry.dtype)
                )
        columns.update(env_series)
        for parser in (extractor.json_parser, extractor.xml_parser):
            state.metrics.parse_seconds += parser.stats.seconds
            state.metrics.parse_documents += parser.stats.documents
            state.metrics.parse_bytes += parser.stats.bytes_scanned
        if parse_span is not None:
            parse_span.attributes.update(
                rows=result.rows_read,
                parse_documents=extractor.json_parser.stats.documents
                + extractor.xml_parser.stats.documents,
                parse_bytes=extractor.json_parser.stats.bytes_scanned
                + extractor.xml_parser.stats.bytes_scanned,
            )
            state.tracer.end(parse_span)
        return columns, result.rows_read

    def _stitch_rows(
        self, columns: dict[str, list], length: int
    ) -> list[dict]:
        """Row dicts (bare + alias-qualified + env keys) from split columns."""
        env_keys = [r.env_key for r in self.cached_fields]
        rows: list[dict] = []
        for i in range(length):
            row: dict = {}
            for name in self.columns:
                value = columns[name][i]
                row[name] = value
                if self.alias:
                    row[f"{self.alias}.{name}"] = value
            for env_key in env_keys:
                row[env_key] = columns[env_key][i]
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    def _read_split(
        self,
        state: ExecState,
        raw_path: str,
        cache_path: str,
        field_names: list[str],
        env_keys: list[str],
    ) -> list[dict]:
        """Algorithm 2 for one (raw file, cache file) pair."""
        columns, length = self._split_columns(
            state, raw_path, cache_path, field_names, env_keys
        )
        return self._stitch_rows(columns, length)

    def _split_columns(
        self,
        state: ExecState,
        raw_path: str,
        cache_path: str,
        field_names: list[str],
        env_keys: list[str],
    ) -> tuple[dict[str, list], int]:
        """Columnar core of Algorithm 2 for one split."""
        fs = state.catalog.fs
        cache_reader = OrcReader(
            fs, cache_path, columns=field_names, sarg=self.cache_sarg
        )

        if not self.columns:
            # "when one reader has no value to read, we will directly
            # return the value of the other reader" — the cache-only read.
            cache_result = cache_reader.read()
            state.metrics.bytes_read += cache_result.bytes_read
            state.metrics.row_groups_total += cache_result.row_groups_total
            state.metrics.row_groups_skipped += cache_result.row_groups_skipped
            return (
                {
                    env_key: cache_result.columns[name]
                    for env_key, name in zip(env_keys, field_names)
                },
                cache_result.rows_read,
            )

        primary_reader = split_reader(
            fs, raw_path, columns=self.columns, sarg=self.sarg
        )
        can_align = (
            self.share_mask_with_primary
            and cache_reader.can_align_row_groups()
            and primary_reader.can_align_row_groups()
            and len(cache_reader.row_group_mask)
            == len(primary_reader.row_group_mask)
        )
        if can_align:
            # Algorithm 3 line 7: both readers skip exactly the row groups
            # eliminated by *either* side's SARG — the cache reader's skip
            # array is shared with the primary reader, and vice versa.
            combined = [
                a and b
                for a, b in zip(
                    cache_reader.row_group_mask, primary_reader.row_group_mask
                )
            ]
            cache_reader.share_row_group_mask(combined)
            primary_reader.share_row_group_mask(combined)
        else:
            # Cannot align (multi-stripe or layout mismatch): read both
            # sides fully; the residual filter preserves correctness.
            cache_reader = OrcReader(fs, cache_path, columns=field_names)
            primary_reader = split_reader(fs, raw_path, columns=self.columns)
        cache_result = cache_reader.read()
        primary_result = primary_reader.read()
        for result in (cache_result, primary_result):
            state.metrics.bytes_read += result.bytes_read
            state.metrics.row_groups_total += result.row_groups_total
            state.metrics.row_groups_skipped += result.row_groups_skipped

        if primary_result.rows_read != cache_result.rows_read:
            raise ExecutionError(
                "value combiner row mismatch in split "
                f"{raw_path!r}: primary={primary_result.rows_read} "
                f"cache={cache_result.rows_read}"
            )

        # Stitch: place each value at its schema position (here, its
        # env key) to form the complete record.
        columns: dict[str, list] = {
            name: primary_result.columns[name] for name in self.columns
        }
        for env_key, name in zip(env_keys, field_names):
            columns[env_key] = cache_result.columns[name]
        return columns, primary_result.rows_read

    def output_names(self) -> set[str]:
        names = super().output_names()
        names |= {r.env_key for r in self.cached_fields}
        return names
