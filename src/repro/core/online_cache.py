"""Online caching with LRU replacement — the comparator of paper §V-E.

The paper contrasts Maxson's predict-and-pre-cache approach with a
conventional online cache: values are cached the first time a query
accesses them and evicted LRU under the byte budget. The first access of
any JSONPath is always a miss (it must parse), and spatially-correlated
queries arriving close together gain nothing — the effects the paper
observes in Fig 14.

:class:`LruCache` is a generic byte-budgeted LRU;
:class:`OnlineCacheSimulator` replays a query stream over it and reports
hit ratio plus a modelled total execution time, using per-path parse-cost
estimates from the scoring function's measurements (or uniform costs when
none are supplied).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..workload.trace import PathKey, TraceQuery

__all__ = ["LruCache", "OnlineCacheStats", "OnlineCacheSimulator"]


class LruCache:
    """Byte-budgeted LRU mapping :class:`PathKey` -> cached size."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._items: OrderedDict[PathKey, int] = OrderedDict()
        self._used = 0
        self.evictions = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, key: PathKey) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def touch(self, key: PathKey) -> bool:
        """Mark access; returns True on hit (and refreshes recency)."""
        if key in self._items:
            self._items.move_to_end(key)
            return True
        return False

    def put(self, key: PathKey, size_bytes: int) -> bool:
        """Insert, evicting LRU entries as needed. Items larger than the
        whole capacity are not cached (returns False)."""
        if size_bytes > self.capacity_bytes:
            return False
        if key in self._items:
            self._used -= self._items.pop(key)
        while self._used + size_bytes > self.capacity_bytes and self._items:
            _, evicted_size = self._items.popitem(last=False)
            self._used -= evicted_size
            self.evictions += 1
        self._items[key] = size_bytes
        self._used += size_bytes
        return True

    def invalidate_all(self) -> None:
        self._items.clear()
        self._used = 0


@dataclass
class OnlineCacheStats:
    """Replay outcome."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    modelled_seconds: float = 0.0
    per_day_hit_ratio: dict[int, float] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class OnlineCacheSimulator:
    """Replay a trace against an online LRU cache.

    Parameters
    ----------
    capacity_bytes:
        Cache budget (same units as Maxson's).
    path_bytes / path_parse_seconds:
        Optional per-path cached-size and parse-cost estimates; uniform
        defaults otherwise.
    invalidate_daily:
        New data lands daily, invalidating cached values of the previous
        day (queries read fresh partitions); the paper's data-update
        pattern makes this the realistic setting.
    """

    def __init__(
        self,
        capacity_bytes: int,
        path_bytes: dict[PathKey, int] | None = None,
        path_parse_seconds: dict[PathKey, float] | None = None,
        default_bytes: int = 1_000_000,
        default_parse_seconds: float = 1.0,
        read_seconds: float = 0.05,
        invalidate_daily: bool = True,
    ) -> None:
        self.cache = LruCache(capacity_bytes)
        self.path_bytes = path_bytes or {}
        self.path_parse_seconds = path_parse_seconds or {}
        self.default_bytes = default_bytes
        self.default_parse_seconds = default_parse_seconds
        self.read_seconds = read_seconds
        self.invalidate_daily = invalidate_daily

    def _size_of(self, key: PathKey) -> int:
        return self.path_bytes.get(key, self.default_bytes)

    def _parse_cost(self, key: PathKey) -> float:
        return self.path_parse_seconds.get(key, self.default_parse_seconds)

    def replay(self, queries: list[TraceQuery]) -> OnlineCacheStats:
        """Run the stream in order; queries must be day-sorted."""
        stats = OnlineCacheStats()
        day_hits: dict[int, list[int]] = {}
        current_day: int | None = None
        for query in queries:
            if (
                self.invalidate_daily
                and current_day is not None
                and query.day != current_day
            ):
                self.cache.invalidate_all()
            current_day = query.day
            for key in query.paths:
                stats.accesses += 1
                if self.cache.touch(key):
                    stats.hits += 1
                    stats.modelled_seconds += self.read_seconds
                    day_hits.setdefault(query.day, []).append(1)
                else:
                    stats.misses += 1
                    stats.modelled_seconds += (
                        self.read_seconds + self._parse_cost(key)
                    )
                    self.cache.put(key, self._size_of(key))
                    day_hits.setdefault(query.day, []).append(0)
        stats.evictions = self.cache.evictions
        stats.per_day_hit_ratio = {
            day: sum(marks) / len(marks) for day, marks in day_hits.items()
        }
        return stats
