"""Feature extraction for the JSONPath Predictor (paper §IV-A).

For each JSONPath the paper feeds the model: *database name*, *table
name*, *column name* (location features — "JSONPaths in the same data
source often appear together"), the *Count sequence* (access counts per
day) and the *Datediff sequence* (how old each count is).

Two encodings are produced from the same statistics window:

* **sequence features** ``(T, D)`` for LSTM-family models — one timestep
  per history day, each carrying [count, log1p(count), datediff,
  was-MPJP, location one-hots]; the final timestep is "tomorrow" with its
  count masked to -1 (that is the label to predict);
* **flat features** — the same window concatenated into a single vector
  for LR / SVM / MLP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.trace import PathKey
from .collector import JsonPathCollector

__all__ = ["FeatureConfig", "FeatureExtractor", "LabelledDataset"]

#: Dimensionality of each hashed location one-hot block.
_LOCATION_BUCKETS = 8


def _location_bucket(text: str) -> int:
    """Stable small-range hash (Python's hash() is salted per process)."""
    value = 2166136261
    for ch in text.encode("utf-8"):
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    return value % _LOCATION_BUCKETS


@dataclass(frozen=True)
class FeatureConfig:
    """Windowing parameters.

    ``window_days`` is the paper's "Date Window Size" (1 week / 2 weeks /
    1 month in Table IV). ``mpjp_threshold`` is the >=2 parses/day rule.
    """

    window_days: int = 7
    mpjp_threshold: int = 2


@dataclass
class LabelledDataset:
    """Aligned features/labels for one prediction day.

    ``sequences[i]`` is (T, D); ``sequence_labels[i]`` is (T,) with the
    final element being the target-day label. ``flat`` is (N, F) and
    ``labels`` is (N,) with just the target-day label — the flat models'
    view. ``keys[i]`` identifies the JSONPath of row i.
    """

    keys: list[PathKey]
    sequences: list[np.ndarray]
    sequence_labels: list[np.ndarray]
    flat: np.ndarray
    labels: np.ndarray


class FeatureExtractor:
    """Build model inputs from collector statistics."""

    def __init__(self, config: FeatureConfig | None = None) -> None:
        self.config = config or FeatureConfig()

    @property
    def timestep_dim(self) -> int:
        """Features per timestep: 4 temporal + 3 hashed location blocks."""
        return 4 + 3 * _LOCATION_BUCKETS

    def _location_vector(self, key: PathKey) -> np.ndarray:
        vec = np.zeros(3 * _LOCATION_BUCKETS)
        vec[_location_bucket(key.database)] = 1.0
        vec[_LOCATION_BUCKETS + _location_bucket(key.table)] = 1.0
        vec[2 * _LOCATION_BUCKETS + _location_bucket(key.column)] = 1.0
        return vec

    def sequence_for(
        self,
        collector: JsonPathCollector,
        key: PathKey,
        target_day: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(T, D) feature sequence and (T,) labels ending at target_day.

        The window covers the ``window_days`` days before ``target_day``
        plus the target day itself as a masked final timestep.
        """
        cfg = self.config
        history = list(range(target_day - cfg.window_days, target_day))
        location = self._location_vector(key)
        rows: list[np.ndarray] = []
        labels: list[int] = []
        for day in history:
            count = collector.count(key, day) if day >= 0 else 0
            # Scaled to O(1) magnitudes: unnormalised counts/datediffs
            # saturate the LSTM gates and stall training.
            datediff = (target_day - day) / cfg.window_days
            was_mpjp = float(count >= cfg.mpjp_threshold)
            temporal = np.array(
                [min(count, 50) / 10.0, np.log1p(count), datediff, was_mpjp]
            )
            rows.append(np.concatenate([temporal, location]))
            labels.append(int(count >= cfg.mpjp_threshold))
        # Target day: count unknown at prediction time -> masked.
        masked = np.array([-1.0, -1.0, 0.0, -1.0])
        rows.append(np.concatenate([masked, location]))
        labels.append(collector.mpjp_label(key, target_day, cfg.mpjp_threshold))
        return np.stack(rows), np.array(labels, dtype=int)

    def dataset(
        self,
        collector: JsonPathCollector,
        target_days: list[int],
        keys: list[PathKey] | None = None,
    ) -> LabelledDataset:
        """Build a labelled dataset over (path x target_day) examples.

        For training, labels come from the collector (the target day has
        already happened); for inference, call :meth:`sequence_for` with a
        future day and ignore the final label.
        """
        universe = keys if keys is not None else collector.universe
        out_keys: list[PathKey] = []
        sequences: list[np.ndarray] = []
        sequence_labels: list[np.ndarray] = []
        flats: list[np.ndarray] = []
        labels: list[int] = []
        for target_day in target_days:
            for key in universe:
                seq, lab = self.sequence_for(collector, key, target_day)
                out_keys.append(key)
                sequences.append(seq)
                sequence_labels.append(lab)
                flats.append(self.flatten(seq))
                labels.append(int(lab[-1]))
        return LabelledDataset(
            keys=out_keys,
            sequences=sequences,
            sequence_labels=sequence_labels,
            flat=np.stack(flats) if flats else np.zeros((0, 0)),
            labels=np.array(labels, dtype=int),
        )

    @staticmethod
    def flatten(sequence: np.ndarray) -> np.ndarray:
        """Flat-model view: order-free aggregates of the window.

        The paper's LR/SVM/MLP baselines "cannot take into account date
        sequences" (Table III discussion) — they see the location features
        plus summary statistics of the count window, not the per-day
        sequence. This is what produces their characteristic
        high-precision / low-recall profile: strong steady daily signals
        are caught, weekly and bursty patterns are not.
        """
        history = sequence[:-1]  # drop the masked target step
        counts = history[:, 0] * 10.0  # undo the sequence-feature scaling
        location = sequence[0, 4:]
        yesterday = counts[-1] if len(counts) else 0.0
        aggregates = np.array(
            [
                yesterday,
                np.log1p(max(yesterday, 0.0)),
                float(yesterday >= 2),
                counts.mean() if len(counts) else 0.0,
                counts.max() if len(counts) else 0.0,
                float(np.mean(counts >= 2)) if len(counts) else 0.0,
                float(np.mean(counts > 0)) if len(counts) else 0.0,
            ]
        )
        return np.concatenate([aggregates, location])
