"""Degraded-mode bookkeeping: circuit breaker + resilience counters.

Maxson's correctness story under failure is *fall back, don't lie*: a
cache table that cannot be read (or fails checksum validation) is
answered from raw parsing instead. Two pieces make that cheap and
observable:

:class:`CacheCircuitBreaker`
    Quarantines a cache table after read failures so subsequent queries
    skip it at *plan* time (the modifier treats it as a miss) instead of
    re-paying the failed read per query. After ``quarantine_seconds``
    the breaker half-opens: the next query re-probes the table; success
    closes the breaker, another failure re-quarantines it. Generation
    swaps rename tables (``__g{N}``), so a fresh generation starts with
    a clean breaker state by construction.

:class:`ResilienceStats`
    Thread-safe counters for every degraded-mode event — fallbacks,
    corruption detections, quarantine skips, retries, build failures and
    recovery actions — surfaced through ``cache_summary()`` and the
    server's ``status()``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..engine.errors import QueryCancelledError
from ..storage.fs import TransientFsError

__all__ = ["CacheCircuitBreaker", "ResilienceStats", "RetryPolicy"]


@dataclass
class _BreakerEntry:
    state: str  # "closed" (counting failures), "open" or "half_open"
    failures: int
    opened_at: float


class CacheCircuitBreaker:
    """Per-cache-table quarantine with timed half-open re-probe."""

    def __init__(
        self,
        quarantine_seconds: float = 30.0,
        failure_threshold: int = 1,
        clock=time.monotonic,
        observer=None,
    ) -> None:
        if quarantine_seconds < 0:
            raise ValueError("quarantine_seconds must be >= 0")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.quarantine_seconds = quarantine_seconds
        self.failure_threshold = failure_threshold
        self.clock = clock
        #: Optional ``observer(cache_table, state)`` called on every
        #: state transition (``"open"``/``"half_open"``/``"closed"``),
        #: outside the breaker lock. Exceptions are swallowed — telemetry
        #: must never affect quarantine decisions. Assignable after
        #: construction (the server wires it to the telemetry store).
        self.observer = observer
        self._entries: dict[str, _BreakerEntry] = {}
        self._lock = threading.Lock()
        #: Bumped on every *state transition* (open, half-open, close of
        #: an existing entry) — not on each failure count — so plan-cache
        #: keys change exactly when plan-time quarantine decisions would.
        self.epoch = 0

    def _emit(self, cache_table: str, state: str) -> None:
        observer = self.observer
        if observer is None:
            return
        try:
            observer(cache_table, state)
        except Exception:
            pass

    # ------------------------------------------------------------------
    def allows(self, cache_table: str) -> bool:
        """May the planner rewrite against this cache table right now?

        Closed tables always pass. An open table passes only once its
        quarantine elapsed — and that pass flips it to half-open, so the
        caller's read doubles as the probe.
        """
        transition = None
        with self._lock:
            entry = self._entries.get(cache_table)
            if entry is None or entry.state in ("closed", "half_open"):
                return True
            if self.clock() - entry.opened_at >= self.quarantine_seconds:
                entry.state = "half_open"
                self.epoch += 1
                transition = "half_open"
                allowed = True
            else:
                allowed = False
        if transition is not None:
            self._emit(cache_table, transition)
        return allowed

    def record_failure(self, cache_table: str) -> None:
        transition = None
        with self._lock:
            entry = self._entries.get(cache_table)
            if entry is None:
                entry = _BreakerEntry(state="closed", failures=0, opened_at=0.0)
                self._entries[cache_table] = entry
            entry.failures += 1
            if entry.failures >= self.failure_threshold:
                if entry.state != "open":
                    self.epoch += 1
                    transition = "open"
                entry.state = "open"
                entry.opened_at = self.clock()
        if transition is not None:
            self._emit(cache_table, transition)

    def record_success(self, cache_table: str) -> None:
        """A full, validated read succeeded: close the breaker."""
        closed = False
        with self._lock:
            if self._entries.pop(cache_table, None) is not None:
                self.epoch += 1
                closed = True
        if closed:
            self._emit(cache_table, "closed")

    # ------------------------------------------------------------------
    def quarantined_tables(self) -> list[str]:
        with self._lock:
            return sorted(
                name
                for name, entry in self._entries.items()
                if entry.state == "open"
            )

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "quarantined": sorted(
                    n for n, e in self._entries.items() if e.state == "open"
                ),
                "half_open": sorted(
                    n for n, e in self._entries.items() if e.state == "half_open"
                ),
            }


class RetryPolicy:
    """Bounded retry with seeded full-jitter exponential backoff.

    Two properties the server's retry loop relies on:

    * **Only transient FS errors are retryable.** Admission rejections
      (``QueueFullError``/``AdmissionTimeout``/``QueryShedError``),
      cooperative cancellations, deadline expiries and plain execution
      errors are terminal by policy — retrying them would amplify the
      very overload they signal, and none of them may count toward the
      cache-table circuit breaker's failure window.
    * **Full jitter.** The previous deterministic
      ``base * 2**attempt`` backoff made concurrent retries re-collide
      on every attempt; drawing uniformly from ``[0, base * 2**attempt]``
      (AWS-style full jitter) decorrelates them. The RNG is seeded so
      tests replay identical schedules.
    """

    def __init__(
        self,
        max_retries: int = 2,
        backoff_seconds: float = 0.01,
        seed: int | None = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def is_retryable(self, exc: BaseException, cancel_token=None) -> bool:
        """May this failure be retried (attempt budget permitting)?"""
        if not isinstance(exc, TransientFsError):
            return False
        if isinstance(exc, QueryCancelledError):  # defensive: never both
            return False
        if cancel_token is not None and cancel_token.cancelled:
            # The deadline has passed (or drain cancelled the query):
            # another attempt could not finish either.
            return False
        return True

    def should_retry(
        self, exc: BaseException, attempt: int, cancel_token=None
    ) -> bool:
        """``is_retryable`` plus the attempt budget (attempt is 0-based)."""
        return attempt < self.max_retries and self.is_retryable(
            exc, cancel_token
        )

    def backoff_for(self, attempt: int) -> float:
        """Full-jitter delay before retry ``attempt`` (0-based)."""
        ceiling = self.backoff_seconds * (2**attempt)
        if ceiling <= 0:
            return 0.0
        with self._lock:
            return self._rng.uniform(0.0, ceiling)


class ResilienceStats:
    """Monotonic counters for degraded-mode events (thread-safe)."""

    FIELDS = (
        "fallback_queries",
        "fallback_splits",
        "corruption_events",
        "quarantine_skips",
        "query_retries",
        "build_failures",
        "recovery_actions",
        "journal_write_failures",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self.FIELDS}

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    @property
    def total_degraded_events(self) -> int:
        with self._lock:
            return sum(self._counts.values())
