"""Maxson Parser (paper §IV-D, Algorithm 1): physical-plan rewriting.

Registered on a :class:`repro.engine.session.Session` as a plan modifier,
it runs between planning and execution — the place MaxsonParser occupies
relative to SparkSQL. For every expression in the plan (ProjectList and
Predicate alike) it pattern-matches ``get_json_object(CN, JP)`` calls:

* resolve the column to its scan, giving (DBN, TN, CN, JP);
* look the tuple up in the cache registry;
* check validity — if the raw table's modification time is *after* the
  cache time, mark the cache table invalid and leave the expression
  untouched (lines 16-20);
* on a valid hit, replace the call with a placeholder
  (:class:`~repro.engine.expressions.CachedField`) carrying the column
  name, column id and JSONPath (lines 22-23).

Afterwards each scan with hits becomes a
:class:`~repro.core.combiner.MaxsonScanExec`; the JSON column is pruned
from the scan when no surviving expression still references it, and
predicates over cached fields are translated into cache-table SARGs
(Algorithm 3) via :mod:`repro.core.pushdown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.expressions import (
    CachedField,
    Column,
    Expression,
    ExtractionCall,
    transform,
    walk,
)
from ..engine.physical import (
    AggregateExec,
    ExecState,
    FilterExec,
    HashJoinExec,
    PhysicalPlan,
    ProjectExec,
    ScanExec,
    SortExec,
)
from ..engine.planner import PlannedQuery
from ..engine.logical import SortKey
from ..workload.trace import PathKey
from .cacher import CacheRegistry
from .combiner import CachedFieldRequest, MaxsonScanExec
from .pushdown import extract_cache_sarg

__all__ = ["MaxsonPlanModifier", "RewriteReport"]


@dataclass
class RewriteReport:
    """What the last ``modify`` call did (for tests and Fig 13)."""

    hits: int = 0
    misses: int = 0
    invalidated_tables: list[str] = field(default_factory=list)
    scans_rewritten: int = 0
    pruned_columns: list[str] = field(default_factory=list)


def _expression_slots(plan: PhysicalPlan):
    """Yield (getter, setter) pairs for every expression in the plan."""
    for node in _walk_plan(plan):
        if isinstance(node, FilterExec):
            yield node, "condition"
        elif isinstance(node, ProjectExec):
            for i in range(len(node.expressions)):
                yield node.expressions, i
        elif isinstance(node, AggregateExec):
            for i in range(len(node.group_keys)):
                yield node.group_keys, i
            for i in range(len(node.output)):
                yield node.output, i
        elif isinstance(node, SortExec):
            for i in range(len(node.keys)):
                yield node.keys, i
        elif isinstance(node, HashJoinExec):
            for i in range(len(node.left_keys)):
                yield node.left_keys, i
            for i in range(len(node.right_keys)):
                yield node.right_keys, i
            if node.residual is not None:
                yield node, "residual"


def _walk_plan(plan: PhysicalPlan):
    yield plan
    for child in plan.children():
        yield from _walk_plan(child)


def _get_slot(holder, slot) -> Expression:
    value = holder[slot] if isinstance(slot, int) else getattr(holder, slot)
    if isinstance(value, SortKey):
        return value.expression
    return value


def _set_slot(holder, slot, expr: Expression) -> None:
    current = holder[slot] if isinstance(slot, int) else getattr(holder, slot)
    if isinstance(current, SortKey):
        expr = SortKey(expr, current.ascending)  # type: ignore[assignment]
    if isinstance(slot, int):
        holder[slot] = expr
    else:
        setattr(holder, slot, expr)


class MaxsonPlanModifier:
    """The plan modifier implementing Algorithm 1.

    Parameters
    ----------
    registry:
        The cache registry populated by the cacher.
    enable_pushdown:
        Algorithm 3 on/off (an ablation knob; the paper has it on).
    """

    def __init__(
        self,
        registry: CacheRegistry,
        enable_pushdown: bool = True,
        breaker=None,
        resilience=None,
    ) -> None:
        self.registry = registry
        self.enable_pushdown = enable_pushdown
        #: Optional :class:`~repro.core.resilience.CacheCircuitBreaker`;
        #: quarantined cache tables are treated as misses at plan time so
        #: queries degrade to raw parsing without re-paying the failure.
        self.breaker = breaker
        #: Optional :class:`~repro.core.resilience.ResilienceStats`.
        self.resilience = resilience
        self.last_report = RewriteReport()

    def plan_cache_token(self) -> tuple:
        """Plan-cache key component for this modifier.

        A generation swap installs a brand-new registry object, so the
        registry's identity changes the token (stale plans referencing
        retired ``__g{N}`` tables can never be served); the registry
        version covers in-place mutations (refresh repairs, invalid
        marks). The breaker epoch changes on quarantine transitions,
        which alter the modifier's plan-time hit/miss decisions.
        """
        epoch = self.breaker.epoch if self.breaker is not None else -1
        registry = self.registry
        return (
            "maxson",
            id(registry),
            registry.version,
            self.enable_pushdown,
            epoch,
        )

    # ------------------------------------------------------------------
    def modify(self, planned: PlannedQuery, state: ExecState) -> PhysicalPlan:
        plan = planned.physical
        report = RewriteReport()
        self.last_report = report
        # Snapshot the registry reference once: a concurrent generation
        # swap replaces ``self.registry`` wholesale, and one query must
        # resolve every expression against a single consistent registry.
        registry = self.registry
        scans = [n for n in _walk_plan(plan) if isinstance(n, ScanExec)]
        if not scans:
            return plan
        resolvers = _build_resolvers(scans)
        requests: dict[int, dict[str, CachedFieldRequest]] = {
            id(scan): {} for scan in scans
        }
        column_counter = [0]

        def rewrite(expr: Expression) -> Expression | None:
            # MatchExpr (Algorithm 1 lines 11-25). Matching the base class
            # means every extraction format (JSON, XML, ...) is cacheable.
            if not isinstance(expr, ExtractionCall):
                return None
            if not isinstance(expr.column, Column):
                return None
            resolved = resolvers.get_scan(expr.column.name)
            if resolved is None:
                return None
            scan, column_name = resolved
            key = PathKey(scan.database, scan.table, column_name, expr.path)
            entry = registry.lookup(key)
            if entry is None:
                report.misses += 1
                return None
            # Circuit breaker: a quarantined cache table is a planned
            # miss — the query parses raw instead of re-hitting a read
            # path known to be failing. allows() also half-opens an
            # expired quarantine, making this read the re-probe.
            if self.breaker is not None and not self.breaker.allows(
                entry.cache_table
            ):
                if self.resilience is not None:
                    self.resilience.add("quarantine_skips")
                report.misses += 1
                return None
            # Validity: cache must be newer than the raw table (lines 16-19).
            modify_time = state.catalog.modification_time(
                scan.database, scan.table
            )
            if modify_time > entry.cache_time:
                registry.mark_table_invalid(entry.cache_table)
                report.invalidated_tables.append(entry.cache_table)
                report.misses += 1
                return None
            prefix = scan.alias or scan.table
            env_key = f"__mx__{prefix}__{entry.field_name}"
            column_counter[0] += 1
            request = CachedFieldRequest(entry=entry, env_key=env_key)
            requests[id(scan)][env_key] = request
            report.hits += 1
            return CachedField(
                column_name=column_name,
                column_id=column_counter[0],
                path=expr.path,
                env_key=env_key,
            )

        for holder, slot in list(_expression_slots(plan)):
            _set_slot(holder, slot, transform(_get_slot(holder, slot), rewrite))

        # Misses are counted at plan time (hits land in the metrics when
        # the combiner actually reads cached values at execution).
        state.metrics.cache_misses += report.misses

        if report.hits == 0:
            return plan

        # Column pruning: drop scan columns (typically the JSON column)
        # no longer referenced by any expression.
        referenced: set[str] = set()
        for holder, slot in _expression_slots(plan):
            for node in walk(_get_slot(holder, slot)):
                if isinstance(node, Column):
                    referenced.add(node.name)

        def replace_scan(node: PhysicalPlan) -> PhysicalPlan | None:
            if not isinstance(node, ScanExec) or isinstance(node, MaxsonScanExec):
                return None
            scan_requests = requests.get(id(node), {})
            if not scan_requests:
                return None
            surviving: list[str] = []
            for name in node.columns:
                qualified = f"{node.alias}.{name}" if node.alias else None
                if name in referenced or (qualified and qualified in referenced):
                    surviving.append(name)
                else:
                    report.pruned_columns.append(f"{node.database}.{node.table}.{name}")
            report.scans_rewritten += 1
            return MaxsonScanExec(
                database=node.database,
                table=node.table,
                alias=node.alias,
                columns=surviving,
                sarg=node.sarg if surviving else None,
                cached_fields=sorted(
                    scan_requests.values(), key=lambda r: r.env_key
                ),
                breaker=self.breaker,
                resilience=self.resilience,
            )

        plan = plan.transform_nodes(replace_scan)

        if self.enable_pushdown:
            _push_cache_sargs(plan)
        return plan


@dataclass
class _Resolvers:
    by_alias: dict[str, ScanExec]
    by_bare_column: dict[str, ScanExec | None]

    def get_scan(self, column_ref: str) -> tuple[ScanExec, str] | None:
        """Resolve a column reference to (scan, bare column name)."""
        if "." in column_ref:
            prefix, bare = column_ref.split(".", 1)
            scan = self.by_alias.get(prefix)
            if scan is not None and bare in scan.columns:
                return scan, bare
            return None
        scan = self.by_bare_column.get(column_ref)
        if scan is None:
            return None
        return scan, column_ref


def _build_resolvers(scans: list[ScanExec]) -> _Resolvers:
    by_alias: dict[str, ScanExec] = {}
    by_bare: dict[str, ScanExec | None] = {}
    for scan in scans:
        by_alias[scan.alias or scan.table] = scan
        by_alias.setdefault(scan.table, scan)
        for column in scan.columns:
            if column in by_bare and by_bare[column] is not scan:
                by_bare[column] = None  # ambiguous across scans
            else:
                by_bare.setdefault(column, scan)
    return _Resolvers(by_alias=by_alias, by_bare_column=by_bare)


def _push_cache_sargs(plan: PhysicalPlan) -> None:
    """Find Filter -> MaxsonScan pairs and push SARGs on cached fields."""

    def visit(node: PhysicalPlan) -> PhysicalPlan | None:
        if isinstance(node, FilterExec) and isinstance(node.child, MaxsonScanExec):
            scan = node.child
            sarg = extract_cache_sarg(node.condition, scan.cached_fields)
            if sarg is not None:
                scan.cache_sarg = sarg
        return None

    plan.transform_nodes(visit)
