"""Scoring Function (paper §IV-B).

Ranks the predicted MPJPs for caching under a byte budget:

* ``B_j`` — average size of the path's parsed value (bytes), measured by
  sampling rows of the raw table;
* ``P_j`` — average parsing time of the path, measured with the same
  parsing algorithm the engine uses (Jackson);
* ``A_j = P_j / B_j`` — acceleration per byte (Eq. 1);
* ``R_j = sum(M_i) / sum(N_i)`` over the queries touching the path,
  where ``M_i`` counts MPJPs and ``N_i`` all JSONPaths in query i
  (Eq. 2 — "relevance": prefer paths whose co-occurring paths are also
  cacheable so whole queries become cache-only);
* ``O_j`` — number of queries that access the path;
* ``Score_j = A_j * R_j * O_j`` (Eq. 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..engine.catalog import Catalog
from ..jsonlib.jackson import dumps
from ..storage.orc import OrcFileReader
from ..workload.trace import PathKey
from .collector import QueryRecord
from .extraction import ValueExtractor, path_format

__all__ = ["PathStats", "ScoredPath", "ScoringFunction"]


@dataclass(frozen=True)
class PathStats:
    """Measured per-path statistics."""

    key: PathKey
    avg_value_bytes: float  # B_j
    avg_parse_seconds: float  # P_j
    estimated_total_bytes: int
    """B_j x table row count — the budget charge if this path is cached."""

    @property
    def acceleration_per_byte(self) -> float:  # A_j
        if self.avg_value_bytes <= 0:
            return 0.0
        return self.avg_parse_seconds / self.avg_value_bytes


@dataclass(frozen=True)
class ScoredPath:
    """A candidate MPJP with its full score decomposition."""

    key: PathKey
    stats: PathStats
    relevance: float  # R_j
    occurrences: int  # O_j
    score: float

    def budget_bytes(self) -> int:
        return self.stats.estimated_total_bytes


def _value_bytes(value: object) -> int:
    """Size of a parsed value once re-serialised for the cache table."""
    if value is None:
        return 1
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    return len(dumps(value).encode("utf-8"))


class ScoringFunction:
    """Measure, score and budget-select MPJPs."""

    def __init__(
        self,
        catalog: Catalog,
        sample_rows: int = 64,
        mpjp_threshold: int = 2,
    ) -> None:
        self.catalog = catalog
        self.sample_rows = sample_rows
        self.mpjp_threshold = mpjp_threshold
        self._stats_cache: dict[PathKey, PathStats] = {}

    # ------------------------------------------------------------------
    # measurement (B_j, P_j)
    # ------------------------------------------------------------------
    def measure(self, key: PathKey) -> PathStats:
        """Sample the raw table to estimate B_j and P_j for one path."""
        cached = self._stats_cache.get(key)
        if cached is not None:
            return cached
        files = self.catalog.table_files(key.database, key.table)
        if not files:
            stats = PathStats(key, 0.0, 0.0, 0)
            self._stats_cache[key] = stats
            return stats
        extractor = ValueExtractor()
        formats = {path_format(key.path)}
        sampled = 0
        total_bytes = 0
        total_rows = 0
        started = time.perf_counter()
        for path in files:
            reader = OrcFileReader(self.catalog.fs.read(path))
            total_rows += reader.row_count
            if sampled >= self.sample_rows:
                continue
            columns, _ = reader.read_columns([key.column])
            for text in columns[key.column]:
                if sampled >= self.sample_rows:
                    break
                if not isinstance(text, str):
                    continue
                documents = extractor.decode(text, formats)
                value = extractor.evaluate(documents, key.path)
                total_bytes += _value_bytes(value)
                sampled += 1
        elapsed = time.perf_counter() - started
        if sampled == 0:
            stats = PathStats(key, 0.0, 0.0, 0)
        else:
            avg_bytes = total_bytes / sampled
            avg_parse = elapsed / sampled
            stats = PathStats(
                key=key,
                avg_value_bytes=avg_bytes,
                avg_parse_seconds=avg_parse,
                estimated_total_bytes=int(avg_bytes * total_rows),
            )
        self._stats_cache[key] = stats
        return stats

    # ------------------------------------------------------------------
    # R_j and O_j from collected queries
    # ------------------------------------------------------------------
    @staticmethod
    def relevance_and_occurrence(
        key: PathKey,
        mpjp_set: set[PathKey],
        records: list[QueryRecord],
    ) -> tuple[float, int]:
        """Eq. 2 over the queries in ``records`` that touch ``key``."""
        m_total = 0
        n_total = 0
        occurrences = 0
        for record in records:
            if key not in record.paths:
                continue
            occurrences += 1
            n_total += len(record.paths)
            m_total += sum(1 for p in record.paths if p in mpjp_set)
        relevance = m_total / n_total if n_total else 0.0
        return relevance, occurrences

    # ------------------------------------------------------------------
    def score(
        self,
        mpjp_set: set[PathKey],
        records: list[QueryRecord],
    ) -> list[ScoredPath]:
        """Score every MPJP candidate; descending score order."""
        out: list[ScoredPath] = []
        for key in sorted(mpjp_set):
            stats = self.measure(key)
            relevance, occurrences = self.relevance_and_occurrence(
                key, mpjp_set, records
            )
            score = stats.acceleration_per_byte * relevance * occurrences
            out.append(
                ScoredPath(
                    key=key,
                    stats=stats,
                    relevance=relevance,
                    occurrences=occurrences,
                    score=score,
                )
            )
        out.sort(key=lambda sp: (-sp.score, sp.key))
        return out

    def select_within_budget(
        self,
        scored: list[ScoredPath],
        budget_bytes: int,
    ) -> list[ScoredPath]:
        """Greedy selection in score order until the budget runs out
        (paper §IV-C: "caches the MPJPs in the sorted order until it runs
        out [of] space")."""
        chosen: list[ScoredPath] = []
        remaining = budget_bytes
        for candidate in scored:
            cost = candidate.budget_bytes()
            if cost <= remaining:
                chosen.append(candidate)
                remaining -= cost
        return chosen

    @staticmethod
    def random_selection(
        scored: list[ScoredPath],
        budget_bytes: int,
        seed: int = 0,
    ) -> list[ScoredPath]:
        """The random-caching comparator of Fig 11: shuffle, then fill."""
        import random

        pool = list(scored)
        random.Random(seed).shuffle(pool)
        chosen: list[ScoredPath] = []
        remaining = budget_bytes
        for candidate in pool:
            cost = candidate.budget_bytes()
            if cost <= remaining:
                chosen.append(candidate)
                remaining -= cost
        return chosen
