"""Crash-safe cache-build journal.

A generation build is multi-step (create tables, write one cache file
per raw file, register entries) and a crash mid-build strands orphan
``__g{N}`` tables that no registry references. The journal is the
write-ahead record that makes those orphans detectable after a restart:

* :meth:`BuildJournal.begin` appends ``begin {N}`` *before* the first
  table of generation ``N`` is created;
* :meth:`BuildJournal.commit` / :meth:`BuildJournal.abort` append the
  terminal record once the build installed or was cleaned up;
* :meth:`BuildJournal.pending` replays the log — any ``begin`` without
  a terminal record marks a generation to garbage-collect
  (:meth:`~repro.core.system.MaxsonSystem.recover_orphan_generations`).

The journal lives in the same (possibly faulty) file system as the data,
so it must itself be robust: writes retry transient errors a bounded
number of times and then degrade to best-effort (recovery falls back to
registry-reference scanning), and the parser ignores torn trailing
records — an append that died mid-line must not poison replay.
"""

from __future__ import annotations

import threading

from ..storage.fs import BlockFileSystem, FsError

__all__ = ["BuildJournal", "JOURNAL_PATH"]

#: Default journal location, beside (not inside) the warehouse tables.
JOURNAL_PATH = "/system/maxson_build_journal"

_TERMINAL = {"commit", "abort"}
_WRITE_ATTEMPTS = 5


class BuildJournal:
    """Append-only begin/commit/abort log for cache-generation builds."""

    def __init__(
        self,
        fs: BlockFileSystem,
        path: str = JOURNAL_PATH,
        on_write_failure=None,
    ) -> None:
        self.fs = fs
        self.path = path
        #: Called with the failed record when all write attempts fail
        #: (wired to a ResilienceStats counter by the system).
        self.on_write_failure = on_write_failure
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def begin(self, generation: int) -> None:
        self._append(f"begin {generation}\n")

    def commit(self, generation: int) -> None:
        self._append(f"commit {generation}\n")

    def abort(self, generation: int) -> None:
        self._append(f"abort {generation}\n")

    def _append(self, record: str) -> None:
        data = record.encode("utf-8")
        with self._lock:
            for attempt in range(_WRITE_ATTEMPTS):
                try:
                    if self.fs.exists(self.path):
                        self.fs.append(self.path, data)
                    else:
                        self.fs.create(self.path, data)
                    return
                except FsError:
                    # Transient write fault or torn append. A torn append
                    # leaves a partial line the parser will discard, and
                    # the full record is retried on a fresh line below.
                    try:
                        self._terminate_torn_line()
                    except FsError:
                        pass
            if self.on_write_failure is not None:
                self.on_write_failure(record.strip())

    def _terminate_torn_line(self) -> None:
        """If the log's tail is a partial record, close it with a newline
        so the retried record starts cleanly."""
        if not self.fs.exists(self.path):
            return
        tail = self.fs.read(self.path)
        if tail and not tail.endswith(b"\n"):
            self.fs.append(self.path, b"\n")

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def records(self) -> list[tuple[str, int]]:
        """Parsed (op, generation) records, malformed lines skipped."""
        if not self.fs.exists(self.path):
            return []
        try:
            text = self.fs.read(self.path).decode("utf-8", errors="replace")
        except FsError:
            return []
        out: list[tuple[str, int]] = []
        for line in text.split("\n"):
            parts = line.strip().split()
            if len(parts) != 2:
                continue  # torn/partial record: ignore
            op, raw = parts
            if op != "begin" and op not in _TERMINAL:
                continue
            try:
                out.append((op, int(raw)))
            except ValueError:
                continue
        return out

    def pending(self) -> list[int]:
        """Generations with a ``begin`` but no ``commit``/``abort``."""
        open_builds: set[int] = set()
        for op, generation in self.records():
            if op == "begin":
                open_builds.add(generation)
            else:
                open_builds.discard(generation)
        return sorted(open_builds)
