"""MaxsonSystem: the end-to-end facade (paper Fig 5).

Wires the components into the nightly cycle the paper describes:

1. the **collector** accumulates per-JSONPath statistics from executed
   queries (live SQL or replayed trace events);
2. at "midnight", the **predictor** proposes tomorrow's MPJPs;
3. the **scoring function** measures and ranks them, and greedily selects
   under the byte budget;
4. the **cacher** drops yesterday's cache and pre-parses the selection
   into file-aligned cache tables;
5. from then on, the **plan modifier** rewrites every incoming query's
   physical plan to read cached values through the Value Combiner, with
   predicate pushdown onto the cache table.

Queries run through :meth:`MaxsonSystem.sql`, which both executes them
and feeds the collector — the feedback loop of the production system.

**Cache generations.** The paper drops yesterday's cache before
re-populating; in a live service that would leave a window in which
concurrent queries observe an empty or half-built cache. The system
instead *double-buffers*: each midnight cycle builds generation ``N+1``
into its own cache tables (``{db}__{table}__g{N+1}``) while generation
``N`` keeps serving, then atomically swaps the registry the plan
modifier consults and retires the old generation's tables. With a
:class:`~repro.server.generation.GenerationGuard` installed
(``generation_guard``), retirement is deferred until the last in-flight
query leasing the old generation completes, so no query ever sees a
torn cache.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..engine.catalog import Catalog
from ..engine.metrics import QueryMetrics
from ..engine.session import QueryResult, Session
from ..storage.fs import BlockFileSystem
from ..workload.trace import PathKey
from .cacher import (
    CACHE_DATABASE,
    CacheBuildReport,
    CacheRegistry,
    JsonPathCacher,
)
from .collector import JsonPathCollector
from .journal import BuildJournal
from .maxson_parser import MaxsonPlanModifier
from .predictor import JsonPathPredictor, PredictorConfig
from .resilience import CacheCircuitBreaker, ResilienceStats
from .scoring import ScoredPath, ScoringFunction

__all__ = ["MaxsonConfig", "MidnightReport", "MaxsonSystem"]


def _span(tracer, name: str, **attributes):
    """A tracer span, or a no-op context when tracing is off."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attributes)


@dataclass
class MaxsonConfig:
    """System-level knobs."""

    cache_budget_bytes: int = 512 * 1024 * 1024
    mpjp_threshold: int = 2
    selection_strategy: str = "score"
    """'score' (the paper's ranking) or 'random' (Fig 11 comparator)."""
    enable_pushdown: bool = True
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    scoring_sample_rows: int = 64
    random_seed: int = 0
    quarantine_seconds: float = 30.0
    """How long the circuit breaker quarantines a failing cache table
    before half-opening for a re-probe."""
    breaker_failure_threshold: int = 1
    """Cache-read failures before a table is quarantined."""
    build_workers: int = 1
    """Threads parsing raw files concurrently during cache builds. Cache
    files are still written sequentially in file order, so raw/cache
    alignment, crash-journal and generation-swap semantics are identical
    at any worker count; 1 (the default) also keeps seeded fault
    injection deterministic."""
    execution_mode: str = "batch"
    """Engine execution path for queries: 'batch' (vectorized with
    parse-once document sharing) or 'row' (per-row interpreter)."""
    scan_workers: int = 1
    """Split-level morsel parallelism for query scans. Results are
    bit-identical at any worker count; >1 overlaps per-split I/O on a
    worker pool."""
    worker_backend: str = "thread"
    """Morsel worker backend when ``scan_workers > 1``: 'thread' (shared
    GIL) or 'process' (spawned workers with warm snapshots exchanging
    ColumnBatch payloads over shared memory). Results are bit-identical
    across backends."""
    plan_cache_entries: int = 64
    """Capacity of the recurring-query plan cache (0 disables it)."""
    result_cache: bool = False
    """Enable the semantic result cache layered above the plan cache
    (canonicalized recurring statements replay their result set)."""
    result_cache_entries: int = 256
    """Capacity of the result cache when enabled."""


@dataclass
class MidnightReport:
    """Outcome of one midnight cycle."""

    day: int
    predicted_mpjp: int
    candidates_scored: int
    selected: list[ScoredPath]
    build: CacheBuildReport
    skipped_missing_tables: int = 0

    @property
    def cached_paths(self) -> list[PathKey]:
        return [sp.key for sp in self.selected]


class MaxsonSystem:
    """Maxson on top of a :class:`~repro.engine.session.Session`."""

    def __init__(
        self,
        session: Session | None = None,
        config: MaxsonConfig | None = None,
    ) -> None:
        self.session = session or Session()
        self.config = config or MaxsonConfig()
        self.session.execution_mode = self.config.execution_mode
        self.session.scan_workers = self.config.scan_workers
        if self.config.worker_backend not in ("thread", "process"):
            raise ValueError(
                f"worker_backend must be 'thread' or 'process', "
                f"got {self.config.worker_backend!r}"
            )
        self.session.worker_backend = self.config.worker_backend
        if self.session.plan_cache_entries != self.config.plan_cache_entries:
            self.session.configure_plan_cache(self.config.plan_cache_entries)
        if self.config.result_cache and not self.session.result_cache_enabled:
            self.session.configure_result_cache(
                True, entries=self.config.result_cache_entries
            )
        self.collector = JsonPathCollector()
        self.registry = CacheRegistry()
        self.cacher = JsonPathCacher(
            self.session.catalog,
            self.registry,
            build_workers=self.config.build_workers,
        )
        self.scoring = ScoringFunction(
            self.session.catalog,
            sample_rows=self.config.scoring_sample_rows,
            mpjp_threshold=self.config.mpjp_threshold,
        )
        self.predictor = JsonPathPredictor(self.config.predictor)
        #: Degraded-mode counters shared by the modifier, the combiner,
        #: the build/recovery paths and the server's status surface.
        self.resilience = ResilienceStats()
        #: Quarantines failing cache tables; survives generation swaps
        #: (new generations use new table names, so they start clean).
        self.breaker = CacheCircuitBreaker(
            quarantine_seconds=self.config.quarantine_seconds,
            failure_threshold=self.config.breaker_failure_threshold,
        )
        self.journal = BuildJournal(
            self.session.catalog.fs,
            on_write_failure=lambda _record: self.resilience.add(
                "journal_write_failures"
            ),
        )
        self.modifier = MaxsonPlanModifier(
            self.registry,
            enable_pushdown=self.config.enable_pushdown,
            breaker=self.breaker,
            resilience=self.resilience,
        )
        self.session.add_plan_modifier(self.modifier)
        #: Closes the predict→cache loop: scores each retired generation's
        #: predicted/cached sets against the parse demand it actually saw.
        from ..obs.efficacy import EfficacyAccountant

        self.efficacy = EfficacyAccountant(byte_weight=self._path_bytes)
        self.current_day = 0
        self.cache_build_metrics = QueryMetrics()
        #: Monotonic cache-generation counter; bumped by every swap.
        self.generation = 0
        #: Optional :class:`~repro.server.generation.GenerationGuard`; when
        #: set, old-generation retirement waits for in-flight leases.
        self.generation_guard = None
        self._generation_lock = threading.RLock()
        self._baseline_lock = threading.RLock()
        self._baseline_depth = 0

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_demo(cls, rows_per_table: int = 300) -> "MaxsonSystem":
        """A ready-to-play system over the Table II tables."""
        from ..workload.tables import load_tables

        session = Session(fs=BlockFileSystem())
        load_tables(session.catalog, rows_per_table=rows_per_table, days=3)
        return cls(session=session)

    @property
    def catalog(self) -> Catalog:
        return self.session.catalog

    def _path_bytes(self, key: PathKey) -> int:
        """Estimated parse bytes for one path (efficacy byte weighting)."""
        return self.scoring.measure(key).estimated_total_bytes

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def sql(
        self,
        sql: str,
        day: int | None = None,
        tracer=None,
        deadline_ms: float | None = None,
        cancel_token=None,
    ) -> QueryResult:
        """Execute SQL through the Maxson-modified session and collect its
        JSONPath references. ``tracer`` opts the query into span
        recording; ``deadline_ms``/``cancel_token`` bound its wall time
        (see :meth:`Session.sql`)."""
        result = self.session.sql(
            sql,
            tracer=tracer,
            deadline_ms=deadline_ms,
            cancel_token=cancel_token,
        )
        # The result carries the planner's path references, so recurring
        # queries feed the collector without a second compile (which
        # would both cost plan time and sidestep the plan cache).
        self.collector.record_planned(
            day if day is not None else self.current_day,
            result.referenced_json_paths,
        )
        return result

    def explain_analyze(
        self,
        sql: str,
        execution_mode: str | None = None,
        day: int | None = None,
    ) -> str:
        """``EXPLAIN ANALYZE`` through the Maxson-modified session; the
        query still feeds the collector like any other."""
        planned = self.session.compile(sql)
        self.collector.record_planned(
            day if day is not None else self.current_day,
            planned.referenced_json_paths,
        )
        return self.session.explain_analyze(sql, execution_mode)

    def baseline_sql(self, sql: str) -> QueryResult:
        """Execute without Maxson (plain engine), for comparisons.

        Safe to nest and to call re-entrantly: a depth counter keeps the
        modifier uninstalled until the outermost call finishes, and both
        install and removal are idempotent on the session.
        """
        with self._baseline_lock:
            self._baseline_depth += 1
            self.session.remove_plan_modifier(self.modifier)
        try:
            return self.session.sql(sql)
        finally:
            with self._baseline_lock:
                self._baseline_depth -= 1
                if self._baseline_depth == 0:
                    self.session.add_plan_modifier(self.modifier)

    # ------------------------------------------------------------------
    # cache generations (double-buffered swap)
    # ------------------------------------------------------------------
    def _swap_generation(
        self, keys: list[PathKey], tracer=None
    ) -> CacheBuildReport:
        """Build the next cache generation off to the side and swap it in.

        The new generation's tables carry a ``__g{N}`` suffix so the
        build never touches tables the current generation is serving
        from. Once built, the registry/cacher references are swapped (a
        plan modifier snapshots ``modifier.registry`` once per query, so
        the swap is atomic from a query's point of view) and the old
        generation is retired — immediately when no
        :attr:`generation_guard` is installed, otherwise as soon as the
        last query leasing the old generation drains.
        """
        with self._generation_lock:
            next_generation = self.generation + 1
            new_registry = CacheRegistry()
            new_cacher = JsonPathCacher(
                self.catalog,
                new_registry,
                row_group_size=self.cacher.row_group_size,
                type_sample_rows=self.cacher.type_sample_rows,
                table_suffix=f"__g{next_generation}",
                build_workers=self.cacher.build_workers,
            )
            # Write-ahead: record the build before its first table exists
            # so a crash mid-build leaves a pending journal entry that
            # recover_orphan_generations() can act on after restart.
            self.journal.begin(next_generation)
            try:
                with _span(
                    tracer,
                    "build",
                    generation=next_generation,
                    keys=len(keys),
                ):
                    build = new_cacher.populate(keys, tracer=tracer)
                    if tracer is not None:
                        tracer.annotate(
                            cache_tables=len(new_registry.cache_tables()),
                            cache_bytes=new_registry.total_bytes(),
                        )
            except Exception as exc:
                # Build failed (fs fault, corrupt raw read, ...): GC the
                # half-built generation and keep the old one serving.
                # A simulated process crash (InjectedCrash) is a
                # BaseException and deliberately NOT caught here.
                self._gc_generation(next_generation, new_registry)
                self.journal.abort(next_generation)
                self.resilience.add("build_failures")
                failed = CacheBuildReport()
                failed.failed = True
                failed.error = f"{type(exc).__name__}: {exc}"
                self.cache_build_metrics.extra["failed_builds"] = (
                    self.cache_build_metrics.extra.get("failed_builds", 0.0)
                    + 1.0
                )
                return failed
            self.journal.commit(next_generation)
            old_registry = self.registry
            old_tables = old_registry.cache_tables()

            def install() -> None:
                self.registry = new_registry
                self.cacher = new_cacher
                self.modifier.registry = new_registry
                self.generation = next_generation
                # Cached plans reference the retired generation's scan
                # operators; the registry-identity token in their keys
                # already makes them unreachable, and clearing frees
                # them immediately.
                self.session.invalidate_plan_cache()
                # Result-cache keys carry the same token, so retired
                # entries can never be served; clearing releases their
                # bytes back to the unified budget right away.
                self.session.invalidate_result_cache()
                # Publish the new generation's jsonpath-tier occupancy
                # (reported beside the budgeted tiers; the midnight
                # selector enforces its own budget at selection time).
                self.session.cache_ledger.set_tier(
                    "jsonpath", new_registry.total_bytes()
                )

            def retire() -> None:
                for table in sorted(old_tables):
                    if self.catalog.table_exists(CACHE_DATABASE, table):
                        self.catalog.drop_table(CACHE_DATABASE, table)
                old_registry.clear()

            guard = self.generation_guard
            with _span(
                tracer,
                "swap",
                generation=next_generation,
                retired_tables=len(old_tables),
                guarded=guard is not None,
            ):
                if guard is None:
                    install()
                    retire()
                else:
                    guard.complete_swap(
                        self.generation, next_generation, install, retire
                    )
            self.cache_build_metrics.extra["build_seconds"] = (
                self.cache_build_metrics.extra.get("build_seconds", 0.0)
                + build.build_seconds
            )
            self.cache_build_metrics.extra["generations_built"] = (
                self.cache_build_metrics.extra.get("generations_built", 0.0)
                + 1.0
            )
            return build

    def _gc_generation(self, generation: int, registry: CacheRegistry) -> None:
        """Drop every cache table of a failed/orphaned generation."""
        suffix = f"__g{generation}"
        dropped = 0
        for info in list(self.catalog.list_tables(CACHE_DATABASE)):
            if info.name.endswith(suffix):
                self.catalog.drop_table(info.database, info.name)
                dropped += 1
        registry.clear()
        if dropped:
            self.resilience.add("recovery_actions", dropped)

    def recover_orphan_generations(self) -> list[str]:
        """Garbage-collect cache tables stranded by a crashed build.

        Run at startup (the server does this automatically) or after a
        simulated crash: any ``maxson_cache`` table not referenced by
        the live registry is unreachable by the plan modifier — either a
        half-built generation whose journal entry never committed, or a
        leftover the retirement path did not get to. Both are dropped,
        pending journal entries are closed with ``abort`` records, and
        the dropped table names are returned.
        """
        with self._generation_lock:
            live = self.registry.cache_tables()
            dropped: list[str] = []
            for info in list(self.catalog.list_tables(CACHE_DATABASE)):
                if info.name in live:
                    continue
                self.catalog.drop_table(info.database, info.name)
                dropped.append(info.name)
            for generation in self.journal.pending():
                self.journal.abort(generation)
            if dropped:
                self.resilience.add("recovery_actions", len(dropped))
            return dropped

    def refresh_cache(self) -> CacheBuildReport:
        """Incrementally extend the current generation's cache tables to
        cover raw files appended since the build (repairing invalidated
        tables in place); see :meth:`JsonPathCacher.refresh`.

        A failed refresh (fs fault mid-append) returns a ``failed``
        report instead of raising: the registry still points at the
        previous intact state, and any torn cache file the failure left
        behind is caught at read time (checksums / file-count alignment)
        and answered through the raw-parsing fallback.
        """
        with self._generation_lock:
            keys = [entry.key for entry in self.registry.all_entries()]
            try:
                build = self.cacher.refresh(keys)
            except Exception as exc:
                self.resilience.add("build_failures")
                failed = CacheBuildReport()
                failed.failed = True
                failed.error = f"{type(exc).__name__}: {exc}"
                return failed
            self.cache_build_metrics.extra["build_seconds"] = (
                self.cache_build_metrics.extra.get("build_seconds", 0.0)
                + build.build_seconds
            )
            return build

    # ------------------------------------------------------------------
    # the midnight cycle
    # ------------------------------------------------------------------
    def train_predictor(
        self, train_days: list[int], keys: list[PathKey] | None = None
    ) -> None:
        self.predictor.fit(self.collector, train_days, keys)

    def run_midnight_cycle(
        self,
        day: int | None = None,
        candidate_keys: list[PathKey] | None = None,
        history_days: int = 7,
        tracer=None,
    ) -> MidnightReport:
        """Predict, score, select and cache for ``day`` (default: the
        system's next day).

        With a ``tracer`` the cycle records a ``midnight`` span tree
        (``collect → predict → score → build → swap``), mirroring how
        traced queries record their operator tree.
        """
        target_day = day if day is not None else self.current_day + 1
        with _span(tracer, "midnight", day=target_day):
            with _span(tracer, "collect"):
                records = self.collector.queries_between(
                    max(0, target_day - history_days), target_day - 1
                )
                if tracer is not None:
                    tracer.annotate(history_records=len(records))
            with _span(tracer, "predict"):
                predicted = self.predictor.predict(
                    self.collector, target_day, candidate_keys
                )
                # Only paths over real tables can be cached.
                cacheable: set[PathKey] = set()
                missing = 0
                for key in predicted:
                    if self.catalog.table_exists(key.database, key.table):
                        cacheable.add(key)
                    else:
                        missing += 1
                if tracer is not None:
                    tracer.annotate(
                        predicted=len(predicted),
                        cacheable=len(cacheable),
                        skipped_missing_tables=missing,
                    )
            with _span(tracer, "score"):
                scored = self.scoring.score(cacheable, records)
                if self.config.selection_strategy == "random":
                    selected = ScoringFunction.random_selection(
                        scored,
                        self.config.cache_budget_bytes,
                        seed=self.config.random_seed,
                    )
                else:
                    selected = self.scoring.select_within_budget(
                        scored, self.config.cache_budget_bytes
                    )
                if tracer is not None:
                    tracer.annotate(
                        scored=len(scored), selected=len(selected)
                    )
            build = self._swap_generation(
                [sp.key for sp in selected], tracer=tracer
            )
            if not build.failed:
                # Close the book on the generation this swap retired,
                # then start accounting for the one that now serves.
                self.efficacy.close_pending(
                    self.collector,
                    up_to_day=target_day,
                    threshold=self.config.mpjp_threshold,
                )
                self.efficacy.open_generation(
                    self.generation,
                    target_day,
                    predicted,
                    [sp.key for sp in selected],
                )
            self.current_day = target_day
        return MidnightReport(
            day=target_day,
            predicted_mpjp=len(predicted),
            candidates_scored=len(scored),
            selected=selected,
            build=build,
            skipped_missing_tables=missing,
        )

    def cache_paths_directly(
        self,
        keys: list[PathKey],
        budget_bytes: int | None = None,
        strategy: str | None = None,
        records=None,
    ) -> MidnightReport:
        """Bypass prediction: score and cache the given candidate paths.

        Used by benchmarks that study scoring/caching in isolation
        (Fig 11 / Table V) where the candidate MPJP set is known.
        """
        budget = (
            budget_bytes if budget_bytes is not None else self.config.cache_budget_bytes
        )
        strategy = strategy or self.config.selection_strategy
        records = records if records is not None else self.collector.queries_between(
            0, self.current_day
        )
        cacheable = {
            key
            for key in keys
            if self.catalog.table_exists(key.database, key.table)
        }
        scored = self.scoring.score(cacheable, records)
        if strategy == "random":
            selected = ScoringFunction.random_selection(
                scored, budget, seed=self.config.random_seed
            )
        else:
            selected = self.scoring.select_within_budget(scored, budget)
        build = self._swap_generation([sp.key for sp in selected])
        if not build.failed:
            self.efficacy.close_pending(
                self.collector,
                up_to_day=self.current_day,
                threshold=self.config.mpjp_threshold,
            )
            self.efficacy.open_generation(
                self.generation,
                self.current_day,
                keys,
                [sp.key for sp in selected],
            )
        return MidnightReport(
            day=self.current_day,
            predicted_mpjp=len(keys),
            candidates_scored=len(scored),
            selected=selected,
            build=build,
            skipped_missing_tables=len(keys) - len(cacheable),
        )

    # ------------------------------------------------------------------
    def cache_summary(self) -> dict[str, object]:
        entries = self.registry.entries()
        self.session.cache_ledger.set_tier(
            "jsonpath", self.registry.total_bytes()
        )
        return {
            "cached_paths": len(entries),
            "cache_tables": len({e.cache_table for e in entries}),
            "cache_bytes": self.registry.total_bytes(),
            "invalid_tables": sorted(self.registry.invalid_tables()),
            "generation": self.generation,
            "build_seconds": self.cache_build_metrics.extra.get(
                "build_seconds", 0.0
            ),
            "failed_builds": int(
                self.cache_build_metrics.extra.get("failed_builds", 0.0)
            ),
            "quarantined_tables": self.breaker.quarantined_tables(),
            "resilience": self.resilience.snapshot(),
            "efficacy": self.efficacy.summary(),
            "plan_cache": self.session.plan_cache_stats(),
            "result_cache": self.session.result_cache_stats(),
            "cache_ledger": self.session.cache_ledger.to_dict(),
            "scan_workers": self.session.scan_workers,
            "worker_backend": self.session.worker_backend,
        }
