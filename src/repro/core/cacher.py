"""JSONPath Cacher (paper §IV-C).

Pre-parses the chosen MPJPs out of the raw tables into *cache tables*:

* all cached paths of one raw table go into one cache table;
* the cache table is written **file-for-file**: cache file *i* holds
  exactly the rows of raw file *i*, in order, so the Value Combiner can
  align the two readers by split index with no join (paper Fig 7);
* cache table and field names encode the raw location
  (``{db}__{table}`` / ``{column}__{mangled path}``) so the mapping is
  recoverable from names alone, as in the paper;
* the cache is dropped and re-populated every midnight cycle.

Cache columns are *typed*: the cacher samples parsed values and stores
int/float/bool columns natively so ORC min/max statistics (and therefore
predicate pushdown) work on cached JSONPath values. Mixed-type or
structured values fall back to JSON-serialised strings.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field

from ..engine.catalog import Catalog
from ..jsonlib.jackson import dumps
from ..storage.orc import OrcFileReader, OrcWriter
from ..storage.schema import DataType, Field, Schema
from ..workload.trace import PathKey
from .extraction import ValueExtractor, path_format

__all__ = [
    "CacheEntry",
    "CacheBuildReport",
    "CacheRegistry",
    "JsonPathCacher",
    "coerce_cache_value",
]

#: Database holding every cache table.
CACHE_DATABASE = "maxson_cache"


def mangle_path(path: str) -> str:
    """A filesystem/identifier-safe encoding of a JSONPath."""
    return re.sub(r"[^0-9A-Za-z]+", "_", path).strip("_")


def cache_table_name(database: str, table: str) -> str:
    return f"{database}__{table}"


def cache_field_name(column: str, path: str) -> str:
    return f"{column}__{mangle_path(path)}"


@dataclass(frozen=True)
class CacheEntry:
    """Registry record for one cached JSONPath."""

    key: PathKey
    cache_table: str
    field_name: str
    dtype: DataType
    cache_time: float
    rows: int
    bytes_on_disk_share: int


@dataclass
class CacheBuildReport:
    """Outcome of one cache population run."""

    entries: list[CacheEntry] = field(default_factory=list)
    tables_written: int = 0
    rows_parsed: int = 0
    build_seconds: float = 0.0
    bytes_written: int = 0
    failed: bool = False
    """True when the build aborted; the previous generation kept serving."""
    error: str = ""
    """Abbreviated reason when ``failed`` is set."""


class CacheRegistry:
    """In-memory registry of valid cache entries (the paper keeps this in
    the metadata store consulted at plan time).

    Safe under concurrent readers and writers: the plan modifier looks
    entries up (and marks tables invalid) from query threads while the
    midnight cycle registers a new generation's entries, so every method
    takes an internal lock. Entries themselves are frozen dataclasses —
    a reader that obtained one keeps a consistent view regardless of
    later registrations.
    """

    def __init__(self) -> None:
        self._entries: dict[PathKey, CacheEntry] = {}
        self._invalid: set[str] = set()  # cache table names marked invalid
        self._lock = threading.RLock()
        #: Monotonic mutation counter. Part of the plan-cache key: any
        #: registration, invalidation or repair changes the plan-time
        #: rewrite decisions, so cached plans keyed on an older version
        #: must stop matching.
        self._version = 0

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def register(self, entry: CacheEntry) -> None:
        with self._lock:
            self._entries[entry.key] = entry
            self._version += 1

    def lookup(self, key: PathKey) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.cache_table in self._invalid:
                return None
            return entry

    def mark_table_invalid(self, cache_table: str) -> None:
        """Algorithm 1 line 19: raw table changed after caching."""
        with self._lock:
            if cache_table not in self._invalid:
                self._invalid.add(cache_table)
                self._version += 1

    def revalidate_table(self, cache_table: str) -> None:
        """Clear the invalid mark after a successful rebuild/refresh."""
        with self._lock:
            if cache_table in self._invalid:
                self._invalid.discard(cache_table)
                self._version += 1

    def entries_including_invalid(self, cache_table: str) -> list[CacheEntry]:
        """Entries of one cache table, whether or not it is marked invalid
        (the refresh path repairs invalidated tables in place)."""
        with self._lock:
            return [
                e for e in self._entries.values() if e.cache_table == cache_table
            ]

    def all_entries(self) -> list[CacheEntry]:
        """Every registered entry, including those of invalidated tables."""
        with self._lock:
            return list(self._entries.values())

    def cache_tables(self) -> set[str]:
        """Names of every cache table with at least one entry (valid or
        not) — the set a generation swap must retire."""
        with self._lock:
            return {e.cache_table for e in self._entries.values()}

    def invalid_tables(self) -> set[str]:
        with self._lock:
            return set(self._invalid)

    def entries(self) -> list[CacheEntry]:
        with self._lock:
            return [
                e
                for e in self._entries.values()
                if e.cache_table not in self._invalid
            ]

    def total_bytes(self) -> int:
        return sum(e.bytes_on_disk_share for e in self.entries())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._invalid.clear()
            self._version += 1


def _infer_dtype(values: list[object]) -> DataType:
    """Pick the narrowest column type holding every sampled value."""
    kinds: set[DataType] = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            kinds.add(DataType.BOOL)
        elif isinstance(value, int):
            kinds.add(DataType.INT64)
        elif isinstance(value, float):
            kinds.add(DataType.FLOAT64)
        elif isinstance(value, str):
            kinds.add(DataType.STRING)
        else:
            return DataType.STRING  # dict/list -> JSON string
    if not kinds:
        return DataType.STRING
    if kinds == {DataType.INT64}:
        return DataType.INT64
    if kinds <= {DataType.INT64, DataType.FLOAT64}:
        return DataType.FLOAT64
    if kinds == {DataType.BOOL}:
        return DataType.BOOL
    if kinds == {DataType.STRING}:
        return DataType.STRING
    return DataType.STRING


def coerce_cache_value(value: object, dtype: DataType) -> object:
    """Coerce one extracted value to a cache column's type.

    Public because the graceful-degradation path (combiner fallback)
    must reproduce the cacher's exact coercions so raw-parsed values are
    byte-identical to what the cache table would have returned.
    """
    if value is None:
        return None
    if dtype is DataType.STRING:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return str(value)
        return dumps(value)
    if dtype is DataType.INT64:
        return int(value) if isinstance(value, (int, bool)) else None
    if dtype is DataType.FLOAT64:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        return None
    if dtype is DataType.BOOL:
        return bool(value) if isinstance(value, bool) else None
    raise AssertionError(dtype)  # pragma: no cover


class JsonPathCacher:
    """Populate cache tables for a set of chosen paths."""

    def __init__(
        self,
        catalog: Catalog,
        registry: CacheRegistry | None = None,
        row_group_size: int = 100,
        type_sample_rows: int = 64,
        table_suffix: str = "",
        build_workers: int = 1,
    ) -> None:
        self.catalog = catalog
        self.registry = registry or CacheRegistry()
        self.row_group_size = row_group_size
        self.type_sample_rows = type_sample_rows
        #: Appended to every cache table name. The generation-swap
        #: protocol builds generation N into ``{db}__{table}__gN`` so the
        #: next generation never collides with tables in-flight queries
        #: are still reading.
        self.table_suffix = table_suffix
        #: Files of one table parse concurrently on this many threads
        #: (parsing dominates build time; see ``--build-workers``). Cache
        #: files are still *written* sequentially in file order on the
        #: build thread, so crash-journal and generation-swap semantics —
        #: and deterministic fault injection at 1 — are unchanged.
        self.build_workers = max(1, int(build_workers))

    def _table_name(self, database: str, table: str) -> str:
        return cache_table_name(database, table) + self.table_suffix

    # ------------------------------------------------------------------
    def drop_all(self) -> None:
        """Empty the cache (the paper empties and re-populates nightly)."""
        for info in list(self.catalog.list_tables(CACHE_DATABASE)):
            self.catalog.drop_table(info.database, info.name)
        self.registry.clear()

    def populate(self, keys: list[PathKey], tracer=None) -> CacheBuildReport:
        """Parse and cache the values of ``keys`` (already budget-chosen,
        in score order). Paths are grouped per raw table; each group
        becomes one cache table whose files align with the raw files.

        ``tracer`` (optional) records one ``cache_table`` span per group
        under the midnight cycle's ``build`` span."""
        report = CacheBuildReport()
        started = time.perf_counter()
        groups: dict[tuple[str, str], list[PathKey]] = {}
        for key in keys:
            groups.setdefault((key.database, key.table), []).append(key)
        for (database, table), group in sorted(groups.items()):
            if tracer is not None:
                rows_before = report.rows_parsed
                with tracer.span(
                    "cache_table",
                    label=f"{database}.{table}",
                    paths=len(group),
                ):
                    self._cache_one_table(database, table, group, report)
                    tracer.annotate(
                        rows_parsed=report.rows_parsed - rows_before
                    )
            else:
                self._cache_one_table(database, table, group, report)
        report.build_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # extension: incremental refresh
    # ------------------------------------------------------------------
    def refresh(self, keys: list[PathKey]) -> CacheBuildReport:
        """Incrementally extend existing cache tables for appended data.

        The paper re-populates the whole cache nightly; with the
        production append-only pattern (§II-B: appended data "will hardly
        be changed") it suffices to parse only the raw files added since
        the cache was built and append the matching cache files. This
        keeps file-index alignment intact and re-validates the entries.

        Falls back to a full :meth:`populate` for any table whose cached
        key set changed or whose cache is missing.
        """
        report = CacheBuildReport()
        started = time.perf_counter()
        groups: dict[tuple[str, str], list[PathKey]] = {}
        for key in keys:
            groups.setdefault((key.database, key.table), []).append(key)
        for (database, table), group in sorted(groups.items()):
            cache_table = self._table_name(database, table)
            # Invalidated-but-intact cache tables are refreshable in place:
            # appending the missing partitions is exactly the repair the
            # append-only update pattern calls for.
            existing = {
                entry.key
                for entry in self.registry.entries_including_invalid(cache_table)
            }
            if existing != set(group) or not self.catalog.table_exists(
                CACHE_DATABASE, cache_table
            ):
                self._cache_one_table(database, table, group, report)
            else:
                self._refresh_one_table(database, table, group, report)
            self.registry.revalidate_table(cache_table)
        report.build_seconds = time.perf_counter() - started
        return report

    def _refresh_one_table(
        self,
        database: str,
        table: str,
        keys: list[PathKey],
        report: CacheBuildReport,
    ) -> None:
        keys = sorted(keys)  # must match the cache table's field order
        cache_table = self._table_name(database, table)
        raw_files = self.catalog.table_files(database, table)
        cache_files = self.catalog.table_files(CACHE_DATABASE, cache_table)
        if len(cache_files) > len(raw_files):
            # Raw table shrank (compaction/repair): rebuild from scratch.
            self._cache_one_table(database, table, keys, report)
            return
        info = self.catalog.get_table(CACHE_DATABASE, cache_table)
        entries = {
            entry.key: entry
            for entry in self.registry.entries_including_invalid(cache_table)
        }
        dtypes = {key: entries[key].dtype for key in keys}
        extractor = ValueExtractor()
        columns_needed = sorted({key.column for key in keys})
        appended_rows = 0
        appended_bytes = 0
        new_files = raw_files[len(cache_files):]
        for offset, (data, n_rows) in enumerate(
            self._parse_files(
                new_files, info.schema, keys, dtypes, columns_needed, extractor
            )
        ):
            file_index = len(cache_files) + offset
            cache_path = f"{info.location}/part-{file_index:05d}.orc"
            self.catalog.fs.create(cache_path, data)
            appended_rows += n_rows
            appended_bytes += len(data)
        report.rows_parsed += appended_rows
        report.bytes_written += appended_bytes
        report.tables_written += 1
        cache_time = self.catalog.modification_time(CACHE_DATABASE, cache_table)
        for key in keys:
            old = entries[key]
            entry = CacheEntry(
                key=key,
                cache_table=cache_table,
                field_name=old.field_name,
                dtype=old.dtype,
                cache_time=cache_time,
                rows=old.rows + appended_rows,
                bytes_on_disk_share=old.bytes_on_disk_share
                + appended_bytes // max(len(keys), 1),
            )
            self.registry.register(entry)
            report.entries.append(entry)

    def _parse_files(
        self,
        paths: list[str],
        schema: Schema,
        keys: list[PathKey],
        dtypes: dict[PathKey, DataType],
        columns_needed: list[str],
        extractor: ValueExtractor,
    ):
        """Yield ``(cache_bytes, n_rows)`` for each raw file, in order.

        With ``build_workers > 1`` the per-file parse runs on a thread
        pool (each worker gets its own :class:`ValueExtractor` — parser
        stats and document caches are not shared across threads); results
        are yielded strictly in file order so the caller's sequential
        writes keep raw/cache file alignment. Worker exceptions —
        including injected crashes — surface on the build thread at the
        failing file's position, exactly where the serial loop would have
        raised.
        """
        if self.build_workers <= 1 or len(paths) <= 1:
            for path in paths:
                yield self._parse_file_to_cache(
                    path, schema, keys, dtypes, columns_needed, extractor
                )
            return
        from concurrent.futures import ThreadPoolExecutor

        def parse(path: str) -> tuple[bytes, int]:
            return self._parse_file_to_cache(
                path, schema, keys, dtypes, columns_needed, ValueExtractor()
            )

        with ThreadPoolExecutor(
            max_workers=min(self.build_workers, len(paths))
        ) as pool:
            futures = [pool.submit(parse, path) for path in paths]
            for future in futures:
                yield future.result()

    def _parse_file_to_cache(
        self,
        raw_path: str,
        schema: Schema,
        keys: list[PathKey],
        dtypes: dict[PathKey, DataType],
        columns_needed: list[str],
        extractor: ValueExtractor,
    ) -> tuple[bytes, int]:
        """Parse one raw file into serialised cache-file bytes."""
        reader = OrcFileReader(self.catalog.fs.read(raw_path))
        raw_columns, _ = reader.read_columns(columns_needed)
        layout = reader.row_group_layout()
        group_rows = layout[0].row_count if layout else self.row_group_size
        writer = OrcWriter(schema, row_group_size=group_rows)
        n_rows = reader.row_count
        formats_by_column = {
            column: {
                path_format(key.path) for key in keys if key.column == column
            }
            for column in columns_needed
        }
        for row_index in range(n_rows):
            decoded: dict[str, dict[str, object]] = {}
            for column in columns_needed:
                decoded[column] = extractor.decode(
                    raw_columns[column][row_index], formats_by_column[column]
                )
            row = tuple(
                coerce_cache_value(
                    extractor.evaluate(decoded[key.column], key.path),
                    dtypes[key],
                )
                for key in keys
            )
            writer.write_row(row)
        return writer.finish(), n_rows

    # ------------------------------------------------------------------
    def _cache_one_table(
        self,
        database: str,
        table: str,
        keys: list[PathKey],
        report: CacheBuildReport,
    ) -> None:
        keys = sorted(keys)  # canonical field order, stable across rebuilds
        files = self.catalog.table_files(database, table)
        if not files:
            return
        extractor = ValueExtractor()
        # Pass 1: sample for column types.
        sample_values: dict[PathKey, list[object]] = {key: [] for key in keys}
        first_reader = OrcFileReader(self.catalog.fs.read(files[0]))
        columns_needed = sorted({key.column for key in keys})
        sample_columns, _ = first_reader.read_columns(columns_needed)
        sample_size = min(self.type_sample_rows, first_reader.row_count)
        formats_by_column = {
            column: {
                path_format(key.path) for key in keys if key.column == column
            }
            for column in columns_needed
        }
        docs: dict[str, list[dict[str, object]]] = {}
        for column in columns_needed:
            docs[column] = [
                extractor.decode(text, formats_by_column[column])
                for text in sample_columns[column][:sample_size]
            ]
        for key in keys:
            for documents in docs[key.column]:
                value = extractor.evaluate(documents, key.path)
                if value is not None:
                    sample_values[key].append(value)
        dtypes = {key: _infer_dtype(sample_values[key]) for key in keys}

        # Cache table schema: one field per cached path, stable order.
        fields = tuple(
            Field(cache_field_name(key.column, key.path), dtypes[key])
            for key in keys
        )
        schema = Schema(fields)
        cache_table = self._table_name(database, table)
        if self.catalog.table_exists(CACHE_DATABASE, cache_table):
            self.catalog.drop_table(CACHE_DATABASE, cache_table)
        info = self.catalog.create_table(CACHE_DATABASE, cache_table, schema)

        # Pass 2: file-aligned parse and write. One raw file -> one cache
        # file with identical row count, order, and row-group boundaries —
        # the preconditions for the Value Combiner's positional stitch and
        # for sharing skip masks between readers (§IV-F).
        rows_per_path = 0
        total_written = 0
        for file_index, (data, n_rows) in enumerate(
            self._parse_files(files, schema, keys, dtypes, columns_needed, extractor)
        ):
            # Mirror the raw file's index in the cache file name so both
            # directories sort identically (the paper's renaming trick).
            cache_path = f"{info.location}/part-{file_index:05d}.orc"
            self.catalog.fs.create(cache_path, data)
            total_written += len(data)
            rows_per_path += n_rows
            report.rows_parsed += n_rows
        report.tables_written += 1
        report.bytes_written += total_written
        cache_time = self.catalog.modification_time(CACHE_DATABASE, cache_table)
        share = total_written // max(len(keys), 1)
        for key in keys:
            entry = CacheEntry(
                key=key,
                cache_table=cache_table,
                field_name=cache_field_name(key.column, key.path),
                dtype=dtypes[key],
                cache_time=cache_time,
                rows=rows_per_path,
                bytes_on_disk_share=share,
            )
            self.registry.register(entry)
            report.entries.append(entry)
