"""JSONPath Predictor (paper §IV-A): the model zoo behind MPJP prediction.

Wraps the NumPy models of :mod:`repro.ml` behind one interface:
``fit(collector, train_days)`` then ``predict(collector, target_day)``
returning the set of paths predicted to be Multiple-Parsed JSONPaths on
``target_day``. Model names match the paper's comparison:

====================  =====================================================
``"lr"``              logistic regression (Table III row 1)
``"svm"``             linear SVM, squared hinge (row 2)
``"mlp"``             MLP classifier (row 3)
``"lstm"``            Uni-LSTM sequence labeller (Table IV comparator)
``"lstm_crf"``        the proposed LSTM+CRF hybrid (rows 4 / Table IV)
``"oracle"``          ground truth (upper bound, for ablations)
``"always"``          predicts every path (cache-everything baseline)
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ml.linear import LogisticRegression
from ..ml.lstm import LSTMSequenceClassifier
from ..ml.lstm_crf import LSTMCRFTagger
from ..ml.metrics import PRF, precision_recall_f1
from ..ml.mlp import MLPClassifier
from ..ml.preprocessing import StandardScaler
from ..ml.svm import LinearSVM
from ..workload.trace import PathKey
from .collector import JsonPathCollector
from .features import FeatureConfig, FeatureExtractor

__all__ = ["PredictorConfig", "JsonPathPredictor", "MODEL_NAMES"]

MODEL_NAMES = ("lr", "svm", "mlp", "lstm", "lstm_crf", "oracle", "always")


@dataclass
class PredictorConfig:
    """Model choice plus feature windowing."""

    model: str = "lstm_crf"
    window_days: int = 7
    mpjp_threshold: int = 2
    hidden_size: int = 50
    num_layers: int = 2
    epochs: int = 8
    learning_rate: float = 5e-3
    all_possible_transitions: bool = True
    seed: int = 0
    model_params: dict = field(default_factory=dict)
    """Extra keyword overrides passed to the underlying model."""


class JsonPathPredictor:
    """Predict tomorrow's MPJPs from collector statistics."""

    def __init__(self, config: PredictorConfig | None = None) -> None:
        self.config = config or PredictorConfig()
        if self.config.model not in MODEL_NAMES:
            raise ValueError(
                f"unknown model {self.config.model!r}; choose from {MODEL_NAMES}"
            )
        self.extractor = FeatureExtractor(
            FeatureConfig(
                window_days=self.config.window_days,
                mpjp_threshold=self.config.mpjp_threshold,
            )
        )
        self._model = None
        self._scaler: StandardScaler | None = None
        self._is_sequence_model = self.config.model in ("lstm", "lstm_crf")

    # ------------------------------------------------------------------
    def _build_model(self):
        cfg = self.config
        params = dict(cfg.model_params)
        if cfg.model == "lr":
            params.setdefault("max_iterations", 400)
            params.setdefault("class_weight", None)
            return LogisticRegression(seed=cfg.seed, **params)
        if cfg.model == "svm":
            params.setdefault("max_iter", 400)
            return LinearSVM(seed=cfg.seed, **params)
        if cfg.model == "mlp":
            params.setdefault("hidden_layer_sizes", (50, 10, 2))
            params.setdefault("max_iter", 300)
            return MLPClassifier(random_state=cfg.seed, **params)
        if cfg.model == "lstm":
            return LSTMSequenceClassifier(
                input_size=self.extractor.timestep_dim,
                hidden_size=cfg.hidden_size,
                num_layers=cfg.num_layers,
                learning_rate=cfg.learning_rate,
                epochs=cfg.epochs,
                seed=cfg.seed,
                **params,
            )
        if cfg.model == "lstm_crf":
            return LSTMCRFTagger(
                input_size=self.extractor.timestep_dim,
                hidden_size=cfg.hidden_size,
                num_layers=cfg.num_layers,
                learning_rate=cfg.learning_rate,
                epochs=cfg.epochs,
                all_possible_transitions=cfg.all_possible_transitions,
                seed=cfg.seed,
                **params,
            )
        return None  # oracle / always need no fitting

    # ------------------------------------------------------------------
    def fit(
        self,
        collector: JsonPathCollector,
        train_days: list[int],
        keys: list[PathKey] | None = None,
    ) -> "JsonPathPredictor":
        """Train on (path, target_day) examples for each day in train_days."""
        if self.config.model in ("oracle", "always"):
            return self
        dataset = self.extractor.dataset(collector, train_days, keys)
        self._model = self._build_model()
        if self._is_sequence_model:
            self._model.fit(dataset.sequences, dataset.sequence_labels)
        else:
            self._scaler = StandardScaler()
            X = self._scaler.fit_transform(dataset.flat)
            self._model.fit(X, dataset.labels)
        return self

    def predict_labels(
        self,
        collector: JsonPathCollector,
        target_day: int,
        keys: list[PathKey] | None = None,
    ) -> tuple[list[PathKey], np.ndarray]:
        """Per-path 0/1 MPJP predictions for target_day."""
        universe = keys if keys is not None else collector.universe
        if self.config.model == "always":
            return universe, np.ones(len(universe), dtype=int)
        if self.config.model == "oracle":
            labels = np.array(
                [
                    collector.mpjp_label(key, target_day, self.config.mpjp_threshold)
                    for key in universe
                ],
                dtype=int,
            )
            return universe, labels
        if self._model is None:
            raise RuntimeError("predictor used before fit()")
        sequences = [
            self.extractor.sequence_for(collector, key, target_day)[0]
            for key in universe
        ]
        if self._is_sequence_model:
            predictions = self._model.predict_last(sequences)
        else:
            flat = np.stack([self.extractor.flatten(s) for s in sequences])
            predictions = self._model.predict(self._scaler.transform(flat))
        return universe, np.asarray(predictions, dtype=int)

    def predict(
        self,
        collector: JsonPathCollector,
        target_day: int,
        keys: list[PathKey] | None = None,
    ) -> set[PathKey]:
        """The predicted MPJP set for target_day."""
        universe, labels = self.predict_labels(collector, target_day, keys)
        return {key for key, label in zip(universe, labels) if label == 1}

    # ------------------------------------------------------------------
    def evaluate(
        self,
        collector: JsonPathCollector,
        eval_days: list[int],
        keys: list[PathKey] | None = None,
    ) -> PRF:
        """Precision/recall/F1 against ground-truth MPJP labels."""
        y_true: list[int] = []
        y_pred: list[int] = []
        for day in eval_days:
            universe, labels = self.predict_labels(collector, day, keys)
            for key, label in zip(universe, labels):
                y_true.append(
                    collector.mpjp_label(key, day, self.config.mpjp_threshold)
                )
                y_pred.append(int(label))
        return precision_recall_f1(np.array(y_true), np.array(y_pred))
