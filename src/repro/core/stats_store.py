"""Persistence for collector statistics.

The paper stores the JSONPath Collector's output in a *statistics table
partitioned by date* in the warehouse itself. This module round-trips a
:class:`~repro.core.collector.JsonPathCollector` through two catalog
tables:

* ``maxson_meta.jsonpath_stats`` — one row per (day, path) with the
  access count (the predictor's input);
* ``maxson_meta.query_paths`` — one row per (day, query, path) membership
  (what the scoring function's R_j/O_j need).

Each ``save`` appends one daily partition file per table, matching the
production append-only pattern; ``load`` rebuilds a collector from all
persisted partitions.
"""

from __future__ import annotations

from ..engine.catalog import Catalog
from ..storage.schema import DataType, Schema
from ..workload.trace import PathKey
from .collector import JsonPathCollector

__all__ = ["StatsStore", "META_DATABASE"]

META_DATABASE = "maxson_meta"
STATS_TABLE = "jsonpath_stats"
MEMBERSHIP_TABLE = "query_paths"


def _stats_schema() -> Schema:
    return Schema.of(
        ("day", DataType.INT64),
        ("database", DataType.STRING),
        ("table_name", DataType.STRING),
        ("column_name", DataType.STRING),
        ("path", DataType.STRING),
        ("count", DataType.INT64),
    )


def _membership_schema() -> Schema:
    return Schema.of(
        ("day", DataType.INT64),
        ("query_seq", DataType.INT64),
        ("database", DataType.STRING),
        ("table_name", DataType.STRING),
        ("column_name", DataType.STRING),
        ("path", DataType.STRING),
    )


class StatsStore:
    """Save/load collector statistics through the warehouse catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._ensure_tables()

    def _ensure_tables(self) -> None:
        if not self.catalog.table_exists(META_DATABASE, STATS_TABLE):
            self.catalog.create_table(META_DATABASE, STATS_TABLE, _stats_schema())
        if not self.catalog.table_exists(META_DATABASE, MEMBERSHIP_TABLE):
            self.catalog.create_table(
                META_DATABASE, MEMBERSHIP_TABLE, _membership_schema()
            )

    # ------------------------------------------------------------------
    def save_day(self, collector: JsonPathCollector, day: int) -> None:
        """Append one day's statistics as a new partition file."""
        counts = collector.counts_on(day)
        stats_rows = [
            (day, key.database, key.table, key.column, key.path, count)
            for key, count in sorted(counts.items())
        ]
        membership_rows = []
        for query_seq, record in enumerate(collector.queries_on(day)):
            for key in record.paths:
                membership_rows.append(
                    (day, query_seq, key.database, key.table, key.column, key.path)
                )
        if stats_rows:
            self.catalog.append_rows(META_DATABASE, STATS_TABLE, stats_rows)
        if membership_rows:
            self.catalog.append_rows(
                META_DATABASE, MEMBERSHIP_TABLE, membership_rows
            )

    def save_all(self, collector: JsonPathCollector) -> None:
        """Persist every collected day (one partition per day)."""
        for day in collector.days:
            self.save_day(collector, day)

    # ------------------------------------------------------------------
    def load(self) -> JsonPathCollector:
        """Rebuild a collector from the persisted partitions.

        Query membership is reconstructed exactly (so R_j/O_j are
        preserved); per-day counts are re-derived from membership, then
        cross-checked against the stats partitions.
        """
        from ..storage.readers import OrcReader

        collector = JsonPathCollector()
        membership_files = self.catalog.table_files(
            META_DATABASE, MEMBERSHIP_TABLE
        )
        # (day, query_seq) -> list of keys
        grouped: dict[tuple[int, int], list[PathKey]] = {}
        for path in membership_files:
            reader = OrcReader(self.catalog.fs, path)
            for day, query_seq, database, table, column, json_path in (
                reader.read_rows()
            ):
                grouped.setdefault((day, query_seq), []).append(
                    PathKey(database, table, column, json_path)
                )
        for (day, _), keys in sorted(grouped.items()):
            collector.record_query(day, tuple(keys))
        return collector

    def verify(self, collector: JsonPathCollector) -> bool:
        """Check the persisted stats partitions agree with ``collector``.

        Returns False on any count mismatch (e.g. a partition written
        twice); used by tests and by operators after manual repairs.
        """
        from collections import Counter

        from ..storage.readers import OrcReader

        persisted: dict[int, Counter] = {}
        for path in self.catalog.table_files(META_DATABASE, STATS_TABLE):
            reader = OrcReader(self.catalog.fs, path)
            for day, database, table, column, json_path, count in reader.read_rows():
                key = PathKey(database, table, column, json_path)
                persisted.setdefault(day, Counter())[key] += count
        for day, counts in persisted.items():
            if counts != collector.counts_on(day):
                return False
        return True
