"""Format dispatch for offline value extraction (cacher / scorer).

Cache keys carry a path whose syntax identifies its format — ``$...`` is
a JSONPath, ``/...`` is the XPath-like dialect of :mod:`repro.xmllib`.
:class:`ValueExtractor` parses each document once per format and
evaluates any number of paths against it, mirroring what the cacher does
during pre-parsing.
"""

from __future__ import annotations

from ..jsonlib.doccache import INVALID, DocumentCache
from ..jsonlib.errors import JsonParseError
from ..jsonlib.jackson import JacksonParser
from ..jsonlib.jsonpath import evaluate as eval_json_path
from ..xmllib.parser import XmlParseError, XmlParser
from ..xmllib.xpath import evaluate_xpath

__all__ = ["path_format", "ValueExtractor"]


def path_format(path: str) -> str:
    """'json' for ``$...`` paths, 'xml' for ``/...`` paths."""
    stripped = path.lstrip()
    if stripped.startswith("$"):
        return "json"
    if stripped.startswith("/"):
        return "xml"
    raise ValueError(f"cannot determine format of path {path!r}")


class ValueExtractor:
    """Parse-once, evaluate-many extraction over one string column value.

    Parsing routes through per-format
    :class:`~repro.jsonlib.doccache.DocumentCache` instances, so repeated
    identical documents — common in real logs, and guaranteed when a
    build and a fallback both touch the same split — parse once per
    extractor rather than once per row. Parser stats still charge each
    *unique* parse exactly once.
    """

    def __init__(self) -> None:
        self.json_parser = JacksonParser()
        self.xml_parser = XmlParser()
        self._json_documents = DocumentCache(self.json_parser, JsonParseError)
        self._xml_documents = DocumentCache(self.xml_parser, XmlParseError)

    def decode(self, text: object, formats: set[str]) -> dict[str, object]:
        """Parse ``text`` once per requested format; None on failure."""
        documents: dict[str, object] = {}
        if not isinstance(text, str):
            return {fmt: None for fmt in formats}
        if "json" in formats:
            document = self._json_documents.document(text)
            documents["json"] = None if document is INVALID else document
        if "xml" in formats:
            document = self._xml_documents.document(text)
            documents["xml"] = None if document is INVALID else document
        return documents

    @property
    def shared_parse_hits(self) -> int:
        """Parses avoided by document sharing in this extractor."""
        return self._json_documents.hits + self._xml_documents.hits

    @staticmethod
    def evaluate(documents: dict[str, object], path: str) -> object:
        """Evaluate one path against the pre-decoded documents."""
        fmt = path_format(path)
        document = documents.get(fmt)
        if document is None:
            return None
        if fmt == "json":
            return eval_json_path(path, document)
        return evaluate_xpath(path, document)

    def extract(self, text: object, path: str) -> object:
        """One-shot convenience: decode + evaluate a single path."""
        fmt = path_format(path)
        return self.evaluate(self.decode(text, {fmt}), path)
