"""Generation leases: safe retirement of swapped-out cache generations.

The midnight cycle builds cache generation ``N+1`` beside the live
generation ``N`` and swaps the registry atomically
(:meth:`repro.core.system.MaxsonSystem._swap_generation`). What remains
unsafe without coordination is *retirement*: dropping generation ``N``'s
tables while a query planned against them is still reading.

:class:`GenerationGuard` closes that window with reference counting:

* every query takes a :meth:`lease` on the current generation before
  planning and holds it through execution;
* :meth:`complete_swap` (called by the system, with the build already
  done) installs the new generation and then retires the old one
  immediately if idle, or parks the retirement until the last lease on
  it drains.

Ordering argument: lease acquisition and swap installation serialise on
one lock. A query that leased before the swap keeps the old tables alive
(refcount > 0 defers the drop); a query that leases after the swap plans
against the already-installed new registry and never touches the old
tables. Either way, no query observes a torn or missing cache.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable

__all__ = ["GenerationGuard"]


class GenerationGuard:
    """Reference-counted leases over a system's cache generations."""

    def __init__(self, system) -> None:
        self.system = system
        self._lock = threading.RLock()
        self._active: dict[int, int] = {}  # generation -> live leases
        self._pending_retire: dict[int, Callable[[], None]] = {}
        # counters (guarded by _lock)
        self.leases_granted = 0
        self.swaps = 0
        self.retired_immediately = 0
        self.retired_deferred = 0
        system.generation_guard = self

    # ------------------------------------------------------------------
    def acquire(self) -> int:
        """Pin the current generation; returns it as the lease token.

        Callers MUST pair every ``acquire`` with a :meth:`release` of the
        returned generation in a ``finally`` — a leaked lease parks the
        generation's retirement forever (tables never dropped, disk never
        reclaimed), even if the leaking query died on an exception.
        """
        with self._lock:
            generation = self.system.generation
            self._active[generation] = self._active.get(generation, 0) + 1
            self.leases_granted += 1
            return generation

    def release(self, generation: int) -> None:
        """Drop one lease; runs a parked retirement when the last drains."""
        retire: Callable[[], None] | None = None
        with self._lock:
            remaining = self._active.get(generation, 0) - 1
            if remaining <= 0:
                self._active.pop(generation, None)
                retire = self._pending_retire.pop(generation, None)
                if retire is not None:
                    self.retired_deferred += 1
            else:
                self._active[generation] = remaining
        if retire is not None:
            retire()

    @contextmanager
    def lease(self):
        """Pin the current generation for the duration of one query."""
        generation = self.acquire()
        try:
            yield generation
        finally:
            self.release(generation)

    def complete_swap(
        self,
        old_generation: int,
        new_generation: int,
        install: Callable[[], None],
        retire: Callable[[], None],
    ) -> None:
        """Install the built generation and retire (or park) the old one.

        Called by :meth:`MaxsonSystem._swap_generation` after the new
        generation's tables are fully built."""
        run_retire = False
        with self._lock:
            install()
            self.swaps += 1
            if self._active.get(old_generation, 0) == 0:
                self.retired_immediately += 1
                run_retire = True
            else:
                self._pending_retire[old_generation] = retire
        if run_retire:
            retire()

    # ------------------------------------------------------------------
    def active_leases(self) -> int:
        with self._lock:
            return sum(self._active.values())

    def snapshot(self) -> dict[str, object]:
        """Serializable lease/retirement statistics."""
        with self._lock:
            return {
                "generation": self.system.generation,
                "active_leases": sum(self._active.values()),
                "leases_granted": self.leases_granted,
                "swaps": self.swaps,
                "retired_immediately": self.retired_immediately,
                "retired_deferred": self.retired_deferred,
                "pending_retirements": len(self._pending_retire),
            }
