"""Server configuration knobs.

:class:`ServerConfig` sizes the three throttles of the query service:

* **worker pool** — how many queries execute simultaneously
  (``max_workers``);
* **per-tenant concurrency** — how many of those one logical client may
  occupy at once (``per_tenant_limit``), the noisy-neighbour guard;
* **admission queue** — how many requests may wait for a tenant slot
  (``queue_capacity``) and for how long (``admission_timeout_seconds``)
  before being shed.

Defaults are sized for the in-process simulator; a production deployment
would scale them with the executor fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerConfig"]


@dataclass
class ServerConfig:
    """Knobs for :class:`~repro.server.service.MaxsonServer`."""

    max_workers: int = 8
    """Size of the query-execution thread pool."""

    per_tenant_limit: int = 4
    """Queries one tenant may have executing concurrently."""

    queue_capacity: int = 64
    """Requests allowed to wait for admission before new ones are shed."""

    admission_timeout_seconds: float = 10.0
    """How long a request may wait for a tenant slot before timing out."""

    default_tenant: str = "default"
    """Tenant used when a request names none."""

    midnight_history_days: int = 7
    """Scoring window handed to the midnight cycle."""

    refresh_interval_seconds: float = 0.0
    """Virtual seconds between incremental cache refreshes (0 = off)."""

    seconds_per_day: float = 86400.0
    """Length of one virtual day on the maintenance clock."""

    max_query_retries: int = 2
    """Attempts to re-run a query that hit a *transient* fs fault
    (:class:`~repro.storage.fs.TransientFsError`), beyond the first."""

    retry_backoff_seconds: float = 0.01
    """Base of the exponential backoff between retry attempts. The
    actual delay is drawn uniformly from ``[0, base * 2**attempt]``
    (full jitter) so concurrent retries do not re-collide."""

    retry_jitter_seed: int | None = 0
    """Seed for the retry-backoff RNG; fixed by default so tests replay
    identical schedules. ``None`` uses entropy."""

    default_deadline_ms: float | None = None
    """Wall-time budget applied to every query that does not carry its
    own ``deadline_ms``. Enforced by cooperative cancellation: a query
    past its deadline raises ``DeadlineExceededError`` at the next
    split/batch/row-loop check and never returns partial rows. ``None``
    disables the default (queries run unbounded unless the request sets
    one)."""

    deadline_shed_factor: float = 1.0
    """Admission sheds a cold query immediately (``QueryShedError``)
    when its remaining deadline is shorter than ``factor ×`` the
    server's moving estimate of query service time. Probable
    result-cache hits are exempt. 0 disables estimate-based shedding
    (queries are still shed once the deadline itself passes)."""

    memory_soft_limit_bytes: int | None = None
    """Soft ceiling for the unified cache ledger. When the watchdog sees
    the total above it, cache tiers are shrunk (result → plan); if
    pressure persists, cold queries are shed until it clears. ``None``
    disables the watchdog."""

    drain_timeout_seconds: float = 5.0
    """How long ``shutdown()`` lets in-flight queries finish before
    cancelling them cooperatively."""

    execution_mode: str | None = None
    """Engine execution path for served queries: 'batch' (vectorized,
    parse-once document sharing) or 'row' (per-row interpreter). Either
    mode returns identical rows; 'row' is the comparison baseline and
    escape hatch. ``None`` inherits the wrapped system's configured
    mode (itself defaulting to 'batch')."""

    build_workers: int | None = None
    """Threads parsing raw files concurrently during midnight cache
    builds and refreshes (writes stay sequential; see
    :class:`~repro.core.cacher.JsonPathCacher`). ``None`` inherits the
    wrapped system's setting."""

    scan_workers: int | None = None
    """Morsel workers per query: file splits of one scan execute
    concurrently on a shared pool of this size (see
    :mod:`repro.engine.parallel`). 1 runs the same morsel code inline
    (serial). ``None`` inherits the wrapped system's setting."""

    worker_backend: str | None = None
    """Morsel worker backend when ``scan_workers > 1``: 'thread' (shared
    GIL) or 'process' (spawned workers holding warm catalog snapshots,
    returning ColumnBatch payloads over shared memory — see
    :mod:`repro.engine.procpool`). ``None`` inherits the wrapped
    system's setting (itself defaulting to 'thread')."""

    plan_cache_entries: int | None = None
    """Capacity of the recurring-query plan cache (LRU over normalized
    SQL fingerprints). 0 disables plan caching. ``None`` inherits the
    wrapped system's setting."""

    result_cache: bool | None = None
    """Enable the semantic result cache (canonicalized recurring
    statements replay their result set; see
    :mod:`repro.engine.resultcache`). ``None`` inherits the wrapped
    system's setting (itself defaulting to off)."""

    cache_budget_bytes: int | None = None
    """Unified byte budget shared by the result, plan and document cache
    tiers (one :class:`~repro.engine.cachebudget.CacheLedger` account).
    ``None`` inherits the wrapped session's setting (unlimited by
    default)."""

    system_tables: bool = False
    """Record the engine's own telemetry — one ``system.queries`` row
    per request outcome (completed / failed / shed / deadline-exceeded /
    cancelled), span trees for traced queries, cache/breaker/watchdog
    events, worker lifecycle and a flight-recorder ``system.incidents``
    table — as NDJSON segment files registered in the catalog under the
    ``system`` database and queryable through the ordinary SQL path
    (see :mod:`repro.obs.systables`). Off by default: the request path
    gains one in-memory fs append per query when enabled."""

    telemetry_budget_bytes: int = 8 * 1024 * 1024
    """Byte budget for all telemetry segments together. Over it, the
    oldest sealed segments are deleted (ring-buffer rotation); the
    occupancy is published to the cache ledger as a reported
    ``telemetry`` tier."""

    telemetry_segment_bytes: int = 64 * 1024
    """Segment size before the telemetry store seals the active segment
    and starts a new one — the granularity of budget rotation."""

    trace_dir: str | None = None
    """Directory for JSONL trace export. When set, every query and every
    midnight cycle records a span tree and appends it to
    ``<trace_dir>/traces.jsonl``. ``None`` (the default) disables
    tracing entirely — served queries run the uninstrumented plan."""

    slow_query_seconds: float = 0.0
    """Queries at or above this wall time are written to the structured
    log as ``slow_query`` events (with their stage breakdown) even when
    routine per-query logging is off. 0 disables the slow-query log."""

    log_file: str | None = None
    """Path for the structured NDJSON event log (queries, failures,
    midnight cycles). ``None`` keeps the logger counting but silent."""

    log_all_queries: bool = False
    """Log every completed query, not just slow ones."""

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.per_tenant_limit < 1:
            raise ValueError("per_tenant_limit must be >= 1")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if self.admission_timeout_seconds < 0:
            raise ValueError("admission_timeout_seconds must be >= 0")
        if self.seconds_per_day <= 0:
            raise ValueError("seconds_per_day must be positive")
        if self.max_query_retries < 0:
            raise ValueError("max_query_retries must be >= 0")
        if self.retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")
        if self.deadline_shed_factor < 0:
            raise ValueError("deadline_shed_factor must be >= 0")
        if (
            self.memory_soft_limit_bytes is not None
            and self.memory_soft_limit_bytes < 0
        ):
            raise ValueError("memory_soft_limit_bytes must be >= 0")
        if self.drain_timeout_seconds < 0:
            raise ValueError("drain_timeout_seconds must be >= 0")
        if self.execution_mode not in (None, "batch", "row"):
            raise ValueError("execution_mode must be 'batch' or 'row'")
        if self.build_workers is not None and self.build_workers < 1:
            raise ValueError("build_workers must be >= 1")
        if self.scan_workers is not None and self.scan_workers < 1:
            raise ValueError("scan_workers must be >= 1")
        if self.worker_backend not in (None, "thread", "process"):
            raise ValueError("worker_backend must be 'thread' or 'process'")
        if self.plan_cache_entries is not None and self.plan_cache_entries < 0:
            raise ValueError("plan_cache_entries must be >= 0")
        if self.cache_budget_bytes is not None and self.cache_budget_bytes < 0:
            raise ValueError("cache_budget_bytes must be >= 0")
        if self.slow_query_seconds < 0:
            raise ValueError("slow_query_seconds must be >= 0")
        if self.telemetry_budget_bytes < 1:
            raise ValueError("telemetry_budget_bytes must be >= 1")
        if self.telemetry_segment_bytes < 1:
            raise ValueError("telemetry_segment_bytes must be >= 1")
