"""Serializable server status snapshots.

:class:`ServerStatus` is the one-call observability surface of the
query service: throughput (QPS), latency percentiles, cache
effectiveness (hit ratio, generation, build seconds), admission-queue
health and the aggregate :class:`~repro.engine.metrics.QueryMetrics` of
everything executed so far. ``to_dict`` is JSON-safe for scraping;
``format`` renders the human snapshot the CLI prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["percentile", "ServerStatus"]


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0.0 if empty).

    Standard nearest-rank definition: the value at 1-based rank
    ``ceil(fraction * n)``. (The earlier ``int(fraction * n)`` variant
    was biased one rank high for every fraction that divides ``n``
    evenly — e.g. p50 of [1, 2, 3, 4] read 3 instead of 2 — and so
    systematically over-reported small-sample latency percentiles.)
    """
    if not sorted_values:
        return 0.0
    if fraction <= 0:
        return sorted_values[0]
    rank = math.ceil(fraction * len(sorted_values)) - 1
    return sorted_values[min(len(sorted_values) - 1, max(0, rank))]


@dataclass
class ServerStatus:
    """One consistent snapshot of a running :class:`MaxsonServer`."""

    uptime_seconds: float
    queries_completed: int
    queries_failed: int
    queries_shed: int
    queries_timed_out: int
    stats_events_ingested: int
    qps: float
    latency_p50_seconds: float
    latency_p95_seconds: float
    latency_max_seconds: float
    cache_hits: int
    cache_misses: int
    cache_hit_ratio: float
    generation: int
    cached_paths: int
    cache_bytes: int
    build_seconds: float
    midnight_cycles: int
    refreshes: int
    queue_depth: int
    peak_queue_depth: int
    active_queries: int
    active_leases: int
    #: Queries cooperatively cancelled at their deadline. Their elapsed
    #: time is *included* in the latency percentiles above — overload
    #: never silently vanishes from throughput accounting.
    queries_deadline_exceeded: int = 0
    #: Queries cancelled for other reasons (drain, explicit cancel).
    queries_cancelled: int = 0
    latency_p99_seconds: float = 0.0
    #: Shed counts by reason: queue_full, admission_timeout, deadline,
    #: memory_pressure. ``queries_shed`` is their sum.
    shed_breakdown: dict[str, int] = field(default_factory=dict)
    #: Waiters admitted ahead of arrival order (result-cache probable hits).
    priority_admitted: int = 0
    draining: bool = False
    #: In-flight queries cancelled by the drain timeout.
    drain_cancelled: int = 0
    #: :meth:`repro.server.watchdog.MemoryWatchdog.snapshot` payload
    #: (empty when no soft memory limit is configured).
    watchdog: dict = field(default_factory=dict)
    fallback_queries: int = 0
    fallback_splits: int = 0
    corruption_events: int = 0
    quarantine_skips: int = 0
    quarantined_tables: int = 0
    query_retries: int = 0
    build_failures: int = 0
    recovery_actions: int = 0
    execution_mode: str = "batch"
    worker_backend: str = "thread"
    duplicate_extractions_eliminated: int = 0
    shared_parse_hits: int = 0
    tenants: dict[str, int] = field(default_factory=dict)
    totals: dict[str, object] = field(default_factory=dict)
    slow_queries: int = 0
    #: :meth:`repro.engine.resultcache.ResultCache.stats` payload (all
    #: zeros when the result cache is disabled).
    result_cache: dict = field(default_factory=dict)
    #: :meth:`repro.engine.cachebudget.CacheLedger.to_dict` payload —
    #: the unified byte budget and per-tier occupancies.
    cache_ledger: dict = field(default_factory=dict)
    #: Per-generation prediction quality (most recent last); entries are
    #: :meth:`repro.obs.efficacy.GenerationEfficacy.to_dict` payloads.
    cache_efficacy: list = field(default_factory=list)
    #: Trace-sink / structured-log counters (empty when tracing is off).
    observability: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (fields are already plain types)."""
        out = dict(self.__dict__)
        out["tenants"] = dict(self.tenants)
        out["totals"] = dict(self.totals)
        out["result_cache"] = dict(self.result_cache)
        out["cache_ledger"] = dict(self.cache_ledger)
        out["cache_efficacy"] = [dict(r) for r in self.cache_efficacy]
        out["observability"] = dict(self.observability)
        out["shed_breakdown"] = dict(self.shed_breakdown)
        out["watchdog"] = dict(self.watchdog)
        return out

    def format(self) -> str:
        """The multi-line snapshot the ``replay-serve`` CLI prints."""
        lines = [
            "== Maxson server status ==",
            f"  uptime:        {self.uptime_seconds:8.2f}s",
            f"  queries:       {self.queries_completed} completed, "
            f"{self.queries_failed} failed, {self.queries_shed} shed, "
            f"{self.queries_timed_out} timed out, "
            f"{self.queries_deadline_exceeded} deadline-exceeded, "
            f"{self.queries_cancelled} cancelled",
            f"  stats events:  {self.stats_events_ingested}",
            f"  qps:           {self.qps:8.2f}",
            f"  latency:       p50={self.latency_p50_seconds * 1000:.1f}ms  "
            f"p95={self.latency_p95_seconds * 1000:.1f}ms  "
            f"p99={self.latency_p99_seconds * 1000:.1f}ms  "
            f"max={self.latency_max_seconds * 1000:.1f}ms",
            f"  cache:         hit_ratio={self.cache_hit_ratio:.1%} "
            f"({self.cache_hits} hits / {self.cache_misses} misses)",
            f"  generation:    {self.generation} "
            f"({self.cached_paths} paths, {self.cache_bytes:,} bytes, "
            f"built in {self.build_seconds:.3f}s)",
            f"  maintenance:   {self.midnight_cycles} midnight cycles, "
            f"{self.refreshes} refreshes",
            f"  admission:     depth={self.queue_depth} "
            f"peak={self.peak_queue_depth} active={self.active_queries} "
            f"leases={self.active_leases}",
            f"  degraded:      {self.fallback_queries} fallback queries "
            f"({self.fallback_splits} splits), "
            f"{self.corruption_events} corruptions, "
            f"{self.quarantine_skips} quarantine skips "
            f"({self.quarantined_tables} tables), "
            f"{self.query_retries} retries, "
            f"{self.build_failures} failed builds, "
            f"{self.recovery_actions} recoveries",
            f"  execution:     mode={self.execution_mode}, "
            f"backend={self.worker_backend}, "
            f"{self.duplicate_extractions_eliminated} duplicate extractions "
            f"eliminated, {self.shared_parse_hits} shared parses",
        ]
        if self.shed_breakdown:
            breakdown = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.shed_breakdown.items())
            )
            lines.append(f"  shed:          {breakdown}")
        if self.watchdog:
            wd = self.watchdog
            lines.append(
                "  watchdog:      soft_limit={:,} bytes, {} shrinks "
                "({:,} bytes reclaimed), pressure={}".format(
                    int(wd.get("soft_limit_bytes", 0)),
                    wd.get("shrinks", 0),
                    int(wd.get("bytes_reclaimed", 0)),
                    "yes" if wd.get("under_pressure") else "no",
                )
            )
        if self.draining or self.drain_cancelled:
            lines.append(
                f"  drain:         draining={self.draining} "
                f"cancelled_in_flight={self.drain_cancelled}"
            )
        if self.slow_queries:
            lines.append(f"  slow queries:  {self.slow_queries}")
        telemetry = self.observability.get("telemetry")
        if telemetry:
            events = telemetry.get("events", {})
            lines.append(
                "  telemetry:     {:,} / {:,} bytes in {} segments "
                "({} rotated, {} dropped), {} query rows, "
                "{} incidents".format(
                    int(telemetry.get("bytes", 0)),
                    int(telemetry.get("budget_bytes", 0)),
                    telemetry.get("segments", 0),
                    telemetry.get("segments_rotated", 0),
                    telemetry.get("events_dropped", 0),
                    events.get("queries", 0),
                    events.get("incidents", 0),
                )
            )
        if self.result_cache.get("capacity"):
            rc = self.result_cache
            budget = self.cache_ledger.get("budget_bytes")
            lines.append(
                "  result cache:  {} entries ({:,} bytes), "
                "{} hits (+{} intermediate) / {} misses, "
                "{} admitted, {} rejected, {} evicted".format(
                    rc.get("entries", 0),
                    int(rc.get("bytes", 0)),
                    rc.get("hits", 0),
                    rc.get("intermediate_hits", 0),
                    rc.get("misses", 0),
                    rc.get("admissions", 0),
                    rc.get("rejections", 0),
                    rc.get("evictions", 0),
                )
            )
            lines.append(
                "  cache budget:  {} / {} bytes across tiers".format(
                    f"{int(self.cache_ledger.get('total_bytes', 0)):,}",
                    f"{budget:,}" if budget is not None else "unlimited",
                )
            )
        if self.cache_efficacy:
            latest = self.cache_efficacy[-1]
            lines.append(
                "  efficacy:      gen {} precision={:.1%} recall={:.1%} "
                "byte_hit={:.1%} ({} scored)".format(
                    latest.get("generation", "?"),
                    float(latest.get("precision", 0.0)),
                    float(latest.get("recall", 0.0)),
                    float(latest.get("byte_weighted_hit_ratio", 0.0)),
                    len(self.cache_efficacy),
                )
            )
        if self.tenants:
            per_tenant = ", ".join(
                f"{tenant}={count}" for tenant, count in sorted(self.tenants.items())
            )
            lines.append(f"  tenants:       {per_tenant}")
        return "\n".join(lines)
