"""Serializable server status snapshots.

:class:`ServerStatus` is the one-call observability surface of the
query service: throughput (QPS), latency percentiles, cache
effectiveness (hit ratio, generation, build seconds), admission-queue
health and the aggregate :class:`~repro.engine.metrics.QueryMetrics` of
everything executed so far. ``to_dict`` is JSON-safe for scraping;
``format`` renders the human snapshot the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["percentile", "ServerStatus"]


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    if fraction <= 0:
        return sorted_values[0]
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


@dataclass
class ServerStatus:
    """One consistent snapshot of a running :class:`MaxsonServer`."""

    uptime_seconds: float
    queries_completed: int
    queries_failed: int
    queries_shed: int
    queries_timed_out: int
    stats_events_ingested: int
    qps: float
    latency_p50_seconds: float
    latency_p95_seconds: float
    latency_max_seconds: float
    cache_hits: int
    cache_misses: int
    cache_hit_ratio: float
    generation: int
    cached_paths: int
    cache_bytes: int
    build_seconds: float
    midnight_cycles: int
    refreshes: int
    queue_depth: int
    peak_queue_depth: int
    active_queries: int
    active_leases: int
    fallback_queries: int = 0
    fallback_splits: int = 0
    corruption_events: int = 0
    quarantine_skips: int = 0
    quarantined_tables: int = 0
    query_retries: int = 0
    build_failures: int = 0
    recovery_actions: int = 0
    execution_mode: str = "batch"
    duplicate_extractions_eliminated: int = 0
    shared_parse_hits: int = 0
    tenants: dict[str, int] = field(default_factory=dict)
    totals: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (fields are already plain types)."""
        out = dict(self.__dict__)
        out["tenants"] = dict(self.tenants)
        out["totals"] = dict(self.totals)
        return out

    def format(self) -> str:
        """The multi-line snapshot the ``replay-serve`` CLI prints."""
        lines = [
            "== Maxson server status ==",
            f"  uptime:        {self.uptime_seconds:8.2f}s",
            f"  queries:       {self.queries_completed} completed, "
            f"{self.queries_failed} failed, {self.queries_shed} shed, "
            f"{self.queries_timed_out} timed out",
            f"  stats events:  {self.stats_events_ingested}",
            f"  qps:           {self.qps:8.2f}",
            f"  latency:       p50={self.latency_p50_seconds * 1000:.1f}ms  "
            f"p95={self.latency_p95_seconds * 1000:.1f}ms  "
            f"max={self.latency_max_seconds * 1000:.1f}ms",
            f"  cache:         hit_ratio={self.cache_hit_ratio:.1%} "
            f"({self.cache_hits} hits / {self.cache_misses} misses)",
            f"  generation:    {self.generation} "
            f"({self.cached_paths} paths, {self.cache_bytes:,} bytes, "
            f"built in {self.build_seconds:.3f}s)",
            f"  maintenance:   {self.midnight_cycles} midnight cycles, "
            f"{self.refreshes} refreshes",
            f"  admission:     depth={self.queue_depth} "
            f"peak={self.peak_queue_depth} active={self.active_queries} "
            f"leases={self.active_leases}",
            f"  degraded:      {self.fallback_queries} fallback queries "
            f"({self.fallback_splits} splits), "
            f"{self.corruption_events} corruptions, "
            f"{self.quarantine_skips} quarantine skips "
            f"({self.quarantined_tables} tables), "
            f"{self.query_retries} retries, "
            f"{self.build_failures} failed builds, "
            f"{self.recovery_actions} recoveries",
            f"  execution:     mode={self.execution_mode}, "
            f"{self.duplicate_extractions_eliminated} duplicate extractions "
            f"eliminated, {self.shared_parse_hits} shared parses",
        ]
        if self.tenants:
            per_tenant = ", ".join(
                f"{tenant}={count}" for tenant, count in sorted(self.tenants.items())
            )
            lines.append(f"  tenants:       {per_tenant}")
        return "\n".join(lines)
