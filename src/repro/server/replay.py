"""Trace replay through the server.

Replays a multi-day workload against a :class:`MaxsonServer` the way the
production trace replays against the paper's deployment: each day's
requests are submitted concurrently from many logical tenants, the
virtual clock then crosses midnight — running the predict/score/build
cycle and atomically swapping the cache generation *while the next day's
queries are already flowing* — and the whole run ends with a status
snapshot.

Two request kinds exist, mirroring the server's two ingestion routes:

* SQL requests (the Table II representative queries) execute and feed
  the collector through the planner;
* bare stats events (day, paths) replay synthetic-trace traffic through
  :meth:`MaxsonServer.ingest` without paying SQL execution, exercising
  concurrent collector writes at trace scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine.errors import DeadlineExceededError, QueryCancelledError
from ..storage.fs import FsError
from ..workload.queries import RepresentativeQuery
from .admission import AdmissionError
from .service import MaxsonServer
from .status import ServerStatus

__all__ = ["ReplayRequest", "ReplayReport", "build_replay_workload", "replay"]


@dataclass(frozen=True)
class ReplayRequest:
    """One replayed SQL request."""

    day: int
    tenant: str
    query_id: str
    sql: str


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    requests: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    """Requests cooperatively cancelled at their deadline (not failures:
    they returned no rows at all, by construction)."""
    cancelled: int = 0
    """Requests cancelled for non-deadline reasons (e.g. drain)."""
    days: int = 0
    wall_seconds: float = 0.0
    verified: int = 0
    """Completed requests whose rows matched the fault-free baseline."""
    mismatched: int = 0
    """Completed requests whose rows did NOT match — wrong answers."""
    status: ServerStatus | None = None
    midnight_reports: list = field(default_factory=list)


def build_replay_workload(
    queries: dict[str, RepresentativeQuery],
    days: int,
    per_day: int,
    tenants: int,
    seed: int = 0,
) -> list[ReplayRequest]:
    """A seeded multi-tenant schedule over the representative queries.

    Query popularity is skewed (rank-weighted) like the trace's JSONPath
    popularity, and tenants are assigned round-robin-with-jitter so each
    day mixes every tenant's traffic.
    """
    rng = random.Random(seed)
    ranked = list(queries.values())
    weights = [1.0 / (rank + 1) for rank in range(len(ranked))]
    out: list[ReplayRequest] = []
    for day in range(days):
        for i in range(per_day):
            query = rng.choices(ranked, weights=weights, k=1)[0]
            tenant = f"tenant-{(i + rng.randrange(tenants)) % tenants:02d}"
            out.append(
                ReplayRequest(
                    day=day, tenant=tenant, query_id=query.query_id, sql=query.sql
                )
            )
    return out


def _baseline_rows(server: MaxsonServer, sql: str) -> list[str] | None:
    """Fault-free reference rows for one query, sorted for comparison.

    Reads the same (possibly faulty) file system, so transient raw-read
    errors are retried a bounded number of times; ``None`` means no
    reference could be obtained and the request is skipped, not failed.
    """
    for _ in range(8):
        try:
            result = server.system.baseline_sql(sql)
            return sorted(map(str, result.rows))
        except FsError:
            continue
    return None


def replay(
    server: MaxsonServer,
    requests: list[ReplayRequest],
    stats_events: list[tuple[int, tuple]] | None = None,
    verify: bool = False,
    deadline_ms: float | None = None,
) -> ReplayReport:
    """Replay ``requests`` day by day at the server's concurrency.

    All of a day's requests are in flight together; the midnight cycle
    for the next day runs from this driver thread while the *last* day's
    stragglers may still be executing — the exact interleaving the
    generation-swap protocol has to survive. ``stats_events`` are
    interleaved through :meth:`MaxsonServer.ingest` on the matching day.

    With ``verify=True`` every completed request's rows are compared
    against a plain-engine baseline of the same SQL — the wrong-answer
    detector of the fault-injection harness (degraded results must be
    row-identical, only slower).

    ``deadline_ms`` attaches a per-request deadline to every submitted
    query (overriding the server default); deadline-exceeded and
    otherwise-cancelled requests are tallied separately from failures —
    the overload gates care about *wrong* answers, and a cancelled query
    produces none.
    """
    import time

    report = ReplayReport(requests=len(requests))
    by_day: dict[int, list[ReplayRequest]] = {}
    for request in requests:
        by_day.setdefault(request.day, []).append(request)
    events_by_day: dict[int, list[tuple]] = {}
    for day, paths in stats_events or ():
        events_by_day.setdefault(day, []).append(paths)
    if not by_day:
        report.status = server.status()
        return report
    started = time.perf_counter()
    last_day = max(by_day)
    spd = server.scheduler.clock.seconds_per_day
    for day in range(min(by_day), last_day + 1):
        day_requests = by_day.get(day, [])
        futures = [
            (r, server.submit(r.sql, tenant=r.tenant, day=r.day, deadline_ms=deadline_ms))
            for r in day_requests
        ]
        for paths in events_by_day.get(day, ()):
            server.ingest(day, paths)
        for request, future in futures:
            try:
                result = future.result()
                report.completed += 1
            except AdmissionError:
                report.shed += 1
                continue
            except DeadlineExceededError:
                report.deadline_exceeded += 1
                continue
            except QueryCancelledError:
                report.cancelled += 1
                continue
            except Exception:
                report.failed += 1
                continue
            if verify:
                expected = _baseline_rows(server, request.sql)
                if expected is None:
                    continue
                if sorted(map(str, result.rows)) == expected:
                    report.verified += 1
                else:
                    report.mismatched += 1
        # Cross midnight into day+1: predict/score/build/swap. Runs while
        # any stragglers of this day still hold generation leases.
        if day < last_day:
            server.scheduler.advance_to((day + 1) * spd)
    report.days = len(by_day)
    report.wall_seconds = time.perf_counter() - started
    report.midnight_reports = list(server.scheduler.reports)
    report.status = server.status()
    return report
