"""MaxsonServer: the concurrent query service.

Turns a :class:`~repro.core.system.MaxsonSystem` (batch facade) into a
long-running service:

* SQL requests from many logical clients execute on a thread pool
  (:meth:`submit` returns a future; :meth:`execute` is the synchronous
  path the pool workers run);
* every request passes **admission control** (per-tenant concurrency
  limit, bounded wait queue with shed/timeout) and then takes a
  **generation lease** so the cache generation it plans against cannot
  be retired under it;
* statistics ingestion is online: executed queries feed the collector
  through ``system.sql`` and replayed trace events through
  :meth:`ingest`, concurrently and without losing counts;
* the **maintenance scheduler** drives midnight cycles (build next
  generation → atomic swap) and incremental refreshes off a virtual
  clock while queries keep flowing;
* :meth:`status` returns a serializable snapshot (QPS, latency
  percentiles, hit ratio, queue depth, cache generation, build seconds).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from ..core.resilience import RetryPolicy
from ..core.system import MaxsonSystem, MidnightReport
from ..engine.cancel import CancelToken
from ..engine.errors import DeadlineExceededError, QueryCancelledError
from ..engine.metrics import QueryMetrics
from ..engine.session import QueryResult
from ..obs.logging import StructuredLogger
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceSink, Tracer
from ..storage.fs import TransientFsError
from ..workload.trace import PathKey
from .admission import AdmissionController, AdmissionError, QueryShedError
from .config import ServerConfig
from .generation import GenerationGuard
from .scheduler import MaintenanceScheduler, VirtualClock
from .status import ServerStatus, percentile
from .watchdog import MemoryWatchdog

__all__ = ["MaxsonServer"]

#: Latency samples kept for percentile estimation (newest win).
_MAX_LATENCY_SAMPLES = 65536

#: Shed-reason labels by admission error class name.
_SHED_REASONS = {
    "QueueFullError": "queue_full",
    "AdmissionTimeout": "admission_timeout",
    "QueryShedError": "deadline",
}


class MaxsonServer:
    """A concurrent Maxson query service over one :class:`MaxsonSystem`."""

    def __init__(
        self,
        system: MaxsonSystem | None = None,
        config: ServerConfig | None = None,
    ) -> None:
        self.system = system or MaxsonSystem()
        self.config = config or ServerConfig()
        if self.config.execution_mode is not None:
            self.system.config.execution_mode = self.config.execution_mode
            self.system.session.execution_mode = self.config.execution_mode
        if self.config.build_workers is not None:
            self.system.config.build_workers = self.config.build_workers
            self.system.cacher.build_workers = self.config.build_workers
        if self.config.scan_workers is not None:
            self.system.config.scan_workers = self.config.scan_workers
            self.system.session.scan_workers = self.config.scan_workers
        if self.config.worker_backend is not None:
            self.system.config.worker_backend = self.config.worker_backend
            self.system.session.worker_backend = self.config.worker_backend
        if self.config.plan_cache_entries is not None:
            self.system.config.plan_cache_entries = self.config.plan_cache_entries
            self.system.session.configure_plan_cache(
                self.config.plan_cache_entries
            )
        if self.config.cache_budget_bytes is not None:
            self.system.session.configure_cache_budget(
                self.config.cache_budget_bytes
            )
        if self.config.result_cache is not None:
            self.system.config.result_cache = self.config.result_cache
            self.system.session.configure_result_cache(self.config.result_cache)
        self.admission = AdmissionController(
            per_tenant_limit=self.config.per_tenant_limit,
            queue_capacity=self.config.queue_capacity,
            timeout_seconds=self.config.admission_timeout_seconds,
        )
        self.retry_policy = RetryPolicy(
            max_retries=self.config.max_query_retries,
            backoff_seconds=self.config.retry_backoff_seconds,
            seed=self.config.retry_jitter_seed,
        )
        self.watchdog = (
            MemoryWatchdog(
                self.system.session, self.config.memory_soft_limit_bytes
            )
            if self.config.memory_soft_limit_bytes is not None
            else None
        )
        self.generation_guard = GenerationGuard(self.system)
        #: Orphan ``__g{N}`` tables dropped at startup — non-empty after
        #: a restart from a crash mid-build (journal replay found a
        #: ``begin`` with no terminal record, or unreferenced tables).
        self.recovered_tables = self.system.recover_orphan_generations()
        #: Shared-memory segments from dead coordinators unlinked at
        #: startup — non-empty after a crash that orphaned process-pool
        #: result segments (see :func:`repro.engine.procpool.reap_orphan_segments`).
        from ..engine.procpool import reap_orphan_segments

        self.reaped_shm_segments = reap_orphan_segments()
        self.scheduler = MaintenanceScheduler(
            self,
            clock=VirtualClock(seconds_per_day=self.config.seconds_per_day),
            refresh_interval_seconds=self.config.refresh_interval_seconds,
            history_days=self.config.midnight_history_days,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_workers, thread_name_prefix="maxson"
        )
        self._lock = threading.Lock()
        self._totals = QueryMetrics()
        self._latencies: list[float] = []
        self._completed = 0
        self._failed = 0
        self._stats_events = 0
        self._per_tenant_completed: dict[str, int] = {}
        self._started = time.perf_counter()
        self._closed = False
        self._draining = False
        # overload accounting (guarded by self._lock)
        self._deadline_exceeded = 0
        self._cancelled = 0
        self._sheds = 0
        self._shed_breakdown: dict[str, int] = {}
        self._drain_cancelled = 0
        #: EWMA of completed-query wall seconds — the service-time
        #: estimate behind deadline-aware shedding. 0 until the first
        #: completion, so a cold server never over-sheds.
        self._latency_ewma = 0.0
        #: Tokens of queries currently inside the admitted region; drain
        #: cancels whatever is still here at its timeout.
        self._active_tokens: set[CancelToken] = set()
        #: Futures submitted to the pool and not yet done (drain waits
        #: for queued work, not just running work).
        self._outstanding: set[Future] = set()
        # ---- observability ------------------------------------------
        self._query_ids = itertools.count(1)
        self.trace_sink = (
            TraceSink(self.config.trace_dir)
            if self.config.trace_dir is not None
            else None
        )
        self.logger = StructuredLogger(
            path=self.config.log_file,
            slow_query_seconds=self.config.slow_query_seconds,
            log_all_queries=self.config.log_all_queries,
        )
        self.metrics = MetricsRegistry()
        self._m_queries = self.metrics.counter(
            "queries_total", "Completed queries", ("tenant",)
        )
        self._m_failed = self.metrics.counter(
            "queries_failed_total", "Queries that raised an engine error"
        )
        self._m_retries = self.metrics.counter(
            "query_retries_total", "Retries after transient fs faults"
        )
        self._m_stats = self.metrics.counter(
            "stats_events_total", "Statistics events ingested (trace replay)"
        )
        self._m_slow = self.metrics.counter(
            "slow_queries_total", "Queries at or past slow_query_seconds"
        )
        self._m_deadline_exceeded = self.metrics.counter(
            "deadline_exceeded_total",
            "Queries cooperatively cancelled at their deadline",
        )
        self._m_shed = self.metrics.counter(
            "shed_total",
            "Requests shed (queue full, admission timeout, deadline, "
            "memory pressure)",
            ("reason",),
        )
        self._m_cancelled = self.metrics.counter(
            "queries_cancelled_total",
            "Queries cancelled cooperatively (drain or explicit cancel)",
        )
        self._m_watchdog_shrinks = self.metrics.counter(
            "watchdog_shrinks_total",
            "Cache-shrink passes run by the memory-pressure watchdog",
        )
        self._watchdog_shrinks_seen = 0
        self._g_memory_pressure = self.metrics.gauge(
            "memory_pressure",
            "1 while the cache ledger exceeds the soft limit after shrinking",
        )
        self._m_latency = self.metrics.histogram(
            "query_latency_seconds", "Query wall time (admission to result)"
        )
        self._m_cache_hits = self.metrics.counter(
            "cache_hits_total", "Cached-path hits across served queries"
        )
        self._m_cache_misses = self.metrics.counter(
            "cache_misses_total", "Cache-eligible misses across served queries"
        )
        self._m_parse_docs = self.metrics.counter(
            "parse_documents_total", "JSON/XML documents parsed by queries"
        )
        self._m_spans = self.metrics.counter(
            "trace_spans_total", "Spans exported to the JSONL trace sink"
        )
        self._m_plan_cache_hits = self.metrics.counter(
            "plan_cache_hits_total", "Served queries planned from the plan cache"
        )
        self._m_plan_cache_misses = self.metrics.counter(
            "plan_cache_misses_total", "Served queries that compiled a fresh plan"
        )
        self._m_result_cache_hits = self.metrics.counter(
            "result_cache_hits_total",
            "Served queries answered from the semantic result cache",
        )
        self._m_result_cache_misses = self.metrics.counter(
            "result_cache_misses_total",
            "Result-cache-eligible queries that executed in full",
        )
        self._m_result_cache_admissions = self.metrics.counter(
            "result_cache_admissions_total",
            "Result sets admitted by benefit-based scoring",
        )
        self._m_result_cache_rejections = self.metrics.counter(
            "result_cache_rejections_total",
            "Result sets rejected by benefit-based admission",
        )
        self._m_result_cache_evictions = self.metrics.counter(
            "result_cache_evictions_total",
            "Result-cache entries evicted under capacity or byte budget",
        )
        self._result_cache_evictions_seen = 0
        self._g_generation = self.metrics.gauge(
            "cache_generation", "Live cache generation number"
        )
        self._g_cached_paths = self.metrics.gauge(
            "cached_paths", "JSONPaths materialised in the live generation"
        )
        self._g_cache_bytes = self.metrics.gauge(
            "cache_bytes", "Bytes held by the live generation's cache tables"
        )
        self._g_queue_depth = self.metrics.gauge(
            "admission_queue_depth", "Requests waiting for a tenant slot"
        )
        self._g_active = self.metrics.gauge(
            "active_queries", "Queries currently executing"
        )
        self._g_leases = self.metrics.gauge(
            "active_generation_leases", "In-flight cache-generation leases"
        )
        self._g_scan_workers = self.metrics.gauge(
            "scan_workers", "Morsel workers available per query"
        )
        self._g_worker_backend = self.metrics.gauge(
            "worker_backend",
            "Active morsel worker backend (1 on the labelled backend)",
            ("backend",),
        )
        self._g_shm_bytes = self.metrics.gauge(
            "shm_live_bytes",
            "Shared-memory bytes held by the process-pool backend",
        )
        self._g_plan_cache_entries = self.metrics.gauge(
            "plan_cache_entries", "Plans currently held by the plan cache"
        )
        self._g_result_cache_entries = self.metrics.gauge(
            "result_cache_entries", "Result sets currently cached"
        )
        self._g_cache_tier_bytes = self.metrics.gauge(
            "cache_tier_bytes",
            "Byte occupancy of one cache tier in the unified ledger",
            ("tier",),
        )
        self._g_cache_budget_bytes = self.metrics.gauge(
            "cache_budget_bytes",
            "Configured unified cache byte budget (0 = unlimited)",
        )
        self._g_cache_budget_used = self.metrics.gauge(
            "cache_budget_used_bytes",
            "Bytes held by the budgeted cache tiers together",
        )
        self._g_eff_precision = self.metrics.gauge(
            "generation_precision",
            "Realized precision of the generation's MPJP prediction",
            ("generation",),
        )
        self._g_eff_recall = self.metrics.gauge(
            "generation_recall",
            "Realized recall of the generation's MPJP prediction",
            ("generation",),
        )
        self._g_eff_byte_hit = self.metrics.gauge(
            "generation_byte_weighted_hit_ratio",
            "Byte-weighted share of realized parse demand the cache held",
            ("generation",),
        )
        self._m_telemetry_events = self.metrics.counter(
            "telemetry_events_total",
            "Events appended to the system-table telemetry store",
            ("table",),
        )
        self._m_telemetry_dropped = self.metrics.counter(
            "telemetry_events_dropped_total",
            "Telemetry events dropped by append failures",
        )
        self._m_telemetry_rotated = self.metrics.counter(
            "telemetry_segments_rotated_total",
            "Telemetry segments deleted by byte-budget rotation",
        )
        self._m_incidents = self.metrics.counter(
            "incidents_total",
            "Flight-recorder incident records captured",
            ("kind",),
        )
        self._g_telemetry_bytes = self.metrics.gauge(
            "telemetry_bytes",
            "Bytes held by the system-table telemetry segments",
        )
        self._g_telemetry_segments = self.metrics.gauge(
            "telemetry_segments",
            "Telemetry segment files currently on the file system",
        )
        self._telemetry_events_seen: dict[str, int] = {}
        self._telemetry_dropped_seen = 0
        self._telemetry_rotated_seen = 0
        # ---- system tables (self-hosted telemetry) ------------------
        self.telemetry = None
        if self.config.system_tables:
            from ..obs.systables import TelemetryStore

            self.telemetry = TelemetryStore(
                self.system.catalog,
                budget_bytes=self.config.telemetry_budget_bytes,
                segment_bytes=self.config.telemetry_segment_bytes,
                ledger=self.system.session.cache_ledger,
            )
            # Worker lifecycle (process backend spawn/crash/exit) and
            # cache-table breaker transitions feed the event tables.
            self.system.session.worker_observer = self._note_worker_event
            self.system.breaker.observer = self._note_breaker_event
        self.logger.log(
            "server_started",
            generation=self.system.generation,
            recovered_tables=len(self.recovered_tables),
            execution_mode=self.system.session.execution_mode,
            tracing=self.trace_sink is not None,
        )

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        tenant: str | None = None,
        day: int | None = None,
        deadline_ms: float | None = None,
    ) -> QueryResult:
        """Admit, lease the cache generation, execute, account.

        Raises :class:`QueueFullError` / :class:`AdmissionTimeout` /
        :class:`QueryShedError` when the request is shed, and re-raises
        engine errors after counting them as failures. A
        :class:`TransientFsError` (an injected or environmental fault
        that may clear) is retried up to ``config.max_query_retries``
        times with seeded full-jitter backoff — the admission slot is
        held across attempts (the request occupies the tenant either
        way), but the generation lease is re-acquired per attempt so
        retries never pin a retiring generation. Admission rejections
        and cancellations are never retried (see
        :class:`~repro.core.resilience.RetryPolicy`).

        ``deadline_ms`` (default ``config.default_deadline_ms``) bounds
        the query's wall time through cooperative cancellation: a query
        past its deadline raises :class:`DeadlineExceededError` within
        bounded slack and never returns partial rows. Deadline-aware
        admission sheds a cold query immediately when its remaining
        budget is smaller than the server's service-time estimate;
        probable result-cache hits are exempt and jump the queue.
        """
        tenant = tenant or self.config.default_tenant
        query_id = f"q-{next(self._query_ids)}"
        tracer = (
            Tracer(trace_id=query_id) if self.trace_sink is not None else None
        )
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        # Every query gets a token (deadline or not) so drain can cancel
        # whatever is in flight at its timeout.
        token = CancelToken.with_deadline_ms(deadline_ms)
        started = time.perf_counter()
        probable_hit = self.system.session.probable_result_cache_hit(sql)
        # Memory-pressure watchdog: shrink caches → shed → (breaker is
        # never touched). Probable hits keep flowing — serving them
        # releases pressure faster than recomputing anything.
        if self.watchdog is not None:
            pressure = self.watchdog.check()
            self._g_memory_pressure.set(1 if pressure else 0)
            if pressure and self.telemetry is not None:
                self.telemetry.record(
                    "cache_events",
                    {
                        "event": "watchdog_pressure",
                        "table_name": "",
                        "generation": self.system.generation,
                        "detail": json.dumps(
                            self.watchdog.snapshot(), sort_keys=True
                        ),
                    },
                )
            if pressure and not probable_hit:
                retry_after = max(self._service_estimate(), 0.01)
                self._note_shed(
                    "memory_pressure",
                    tenant,
                    time.perf_counter() - started,
                    query_id=query_id,
                    sql=sql,
                    retry_after_seconds=retry_after,
                )
                raise QueryShedError(
                    "server under memory pressure: cold query shed",
                    retry_after_seconds=retry_after,
                )
        estimate = 0.0 if probable_hit else self._service_estimate()
        try:
            self.admission.acquire(
                tenant,
                timeout=self.config.admission_timeout_seconds,
                priority=1 if probable_hit else 0,
                deadline=token.deadline,
                service_estimate=estimate * self.config.deadline_shed_factor,
            )
        except AdmissionError as exc:
            self._note_shed(
                _SHED_REASONS.get(type(exc).__name__, "admission"),
                tenant,
                time.perf_counter() - started,
                query_id=query_id,
                sql=sql,
                retry_after_seconds=getattr(exc, "retry_after_seconds", None),
            )
            raise
        try:
            with self._lock:
                self._active_tokens.add(token)
            attempt = 0
            while True:
                generation = self.generation_guard.acquire()
                try:
                    result = self.system.sql(
                        sql, day=day, tracer=tracer, cancel_token=token
                    )
                    break
                except TransientFsError as exc:
                    if not self.retry_policy.should_retry(exc, attempt, token):
                        self._record_failure(
                            query_id,
                            tenant,
                            generation,
                            exc,
                            sql=sql,
                            elapsed=time.perf_counter() - started,
                            tracer=tracer,
                        )
                        raise
                    self.system.resilience.add("query_retries")
                    self._m_retries.inc()
                    backoff = self.retry_policy.backoff_for(attempt)
                    attempt += 1
                except DeadlineExceededError as exc:
                    self._note_deadline_exceeded(
                        query_id,
                        tenant,
                        generation,
                        time.perf_counter() - started,
                        tracer,
                        exc,
                        sql=sql,
                    )
                    raise
                except QueryCancelledError as exc:
                    self._note_cancelled(
                        query_id,
                        tenant,
                        generation,
                        time.perf_counter() - started,
                        tracer,
                        exc,
                        sql=sql,
                    )
                    raise
                except Exception as exc:
                    self._record_failure(
                        query_id,
                        tenant,
                        generation,
                        exc,
                        sql=sql,
                        elapsed=time.perf_counter() - started,
                        tracer=tracer,
                    )
                    raise
                finally:
                    self.generation_guard.release(generation)
                if backoff > 0:
                    remaining = token.remaining_seconds()
                    if remaining is not None:
                        backoff = min(backoff, max(0.0, remaining))
                    time.sleep(backoff)
        finally:
            with self._lock:
                self._active_tokens.discard(token)
            self.admission.release(tenant)
        elapsed = time.perf_counter() - started
        with self._lock:
            self._completed += 1
            self._latency_ewma = (
                elapsed
                if self._completed == 1
                else 0.8 * self._latency_ewma + 0.2 * elapsed
            )
            self._per_tenant_completed[tenant] = (
                self._per_tenant_completed.get(tenant, 0) + 1
            )
            self._totals.merge(result.metrics)
            self._latencies.append(elapsed)
            if len(self._latencies) > _MAX_LATENCY_SAMPLES:
                del self._latencies[: -_MAX_LATENCY_SAMPLES // 2]
        metrics = result.metrics
        self._m_queries.inc(tenant=tenant)
        self._m_latency.observe(elapsed)
        if metrics.cache_hits:
            self._m_cache_hits.inc(metrics.cache_hits)
        if metrics.cache_misses:
            self._m_cache_misses.inc(metrics.cache_misses)
        if metrics.parse_documents:
            self._m_parse_docs.inc(metrics.parse_documents)
        plan_hits = int(metrics.extra.get("plan_cache_hits", 0))
        if plan_hits:
            self._m_plan_cache_hits.inc(plan_hits)
        plan_misses = int(metrics.extra.get("plan_cache_misses", 0))
        if plan_misses:
            self._m_plan_cache_misses.inc(plan_misses)
        for extra_key, counter in (
            ("result_cache_hits", self._m_result_cache_hits),
            ("result_cache_misses", self._m_result_cache_misses),
            ("result_cache_admissions", self._m_result_cache_admissions),
            ("result_cache_rejections", self._m_result_cache_rejections),
        ):
            value = int(metrics.extra.get(extra_key, 0))
            if value:
                counter.inc(value)
        if (
            self.config.slow_query_seconds > 0
            and elapsed >= self.config.slow_query_seconds
        ):
            self._m_slow.inc()
        self.logger.query(
            query_id,
            elapsed,
            tenant=tenant,
            generation=generation,
            read_seconds=round(metrics.read_seconds, 6),
            parse_seconds=round(metrics.parse_seconds, 6),
            parse_documents=metrics.parse_documents,
            cache_hits=metrics.cache_hits,
            rows=len(result.rows),
            retries=attempt,
        )
        if tracer is not None:
            written = self.trace_sink.write(
                tracer, query_id=query_id, tenant=tenant, generation=generation
            )
            if written:
                self._m_spans.inc(written)
        self._record_query_row(
            query_id,
            tenant,
            "completed",
            elapsed,
            generation=generation,
            metrics=metrics,
            rows=len(result.rows),
        )
        if self.telemetry is not None and tracer is not None:
            self.telemetry.record_spans(
                tracer, query_id, backend=self.system.session.worker_backend
            )
        degraded_splits = int(metrics.extra.get("degraded_splits", 0))
        slow = (
            self.config.slow_query_seconds > 0
            and elapsed >= self.config.slow_query_seconds
        )
        if slow or degraded_splits:
            self._capture_incident(
                "slow_query" if slow else "degraded",
                query_id,
                tenant,
                sql,
                elapsed,
                generation=generation,
                tracer=tracer,
                metrics=metrics,
            )
        return result

    def _record_failure(
        self,
        query_id: str,
        tenant: str,
        generation: int,
        exc: Exception,
        sql: str = "",
        elapsed: float = 0.0,
        tracer=None,
    ) -> None:
        with self._lock:
            self._failed += 1
        self._m_failed.inc()
        error = f"{type(exc).__name__}: {exc}"
        self.logger.log(
            "query_failed",
            query_id=query_id,
            tenant=tenant,
            generation=generation,
            error=error,
        )
        self._record_query_row(
            query_id,
            tenant,
            "failed",
            elapsed,
            generation=generation,
            error=error,
        )
        self._capture_incident(
            "failed",
            query_id,
            tenant,
            sql,
            elapsed,
            generation=generation,
            tracer=tracer,
            error=exc,
        )

    def _service_estimate(self) -> float:
        """Moving estimate of query service seconds (0 on a cold server)."""
        with self._lock:
            return self._latency_ewma

    def _observe_request_latency(self, elapsed: float) -> None:
        """Latency accounting shared by completed, timed-out and shed
        requests: every request that consumed server time appears in the
        histogram and the status percentiles — overload never silently
        vanishes from throughput accounting."""
        with self._lock:
            self._latencies.append(elapsed)
            if len(self._latencies) > _MAX_LATENCY_SAMPLES:
                del self._latencies[: -_MAX_LATENCY_SAMPLES // 2]
        self._m_latency.observe(elapsed)

    def _note_shed(
        self,
        reason: str,
        tenant: str,
        elapsed: float,
        query_id: str = "",
        sql: str = "",
        retry_after_seconds: float | None = None,
    ) -> None:
        with self._lock:
            self._sheds += 1
            self._shed_breakdown[reason] = (
                self._shed_breakdown.get(reason, 0) + 1
            )
        self._m_shed.inc(reason=reason)
        self._observe_request_latency(elapsed)
        # The retry-after hint rides the server response (QueryShedError);
        # log the same value so the NDJSON record matches what the client
        # was told instead of omitting it.
        self.logger.log(
            "query_shed",
            reason=reason,
            tenant=tenant,
            query_id=query_id,
            retry_after_seconds=(
                round(retry_after_seconds, 6)
                if retry_after_seconds is not None
                else None
            ),
        )
        self._record_query_row(
            query_id,
            tenant,
            "shed",
            elapsed,
            reason=reason,
            retry_after_seconds=retry_after_seconds,
        )
        self._capture_incident(
            "shed",
            query_id,
            tenant,
            sql,
            elapsed,
            reason=reason,
        )

    def _note_deadline_exceeded(
        self,
        query_id: str,
        tenant: str,
        generation: int,
        elapsed: float,
        tracer,
        exc: Exception,
        sql: str = "",
    ) -> None:
        with self._lock:
            self._deadline_exceeded += 1
        self._m_deadline_exceeded.inc()
        self._observe_request_latency(elapsed)
        error = f"{type(exc).__name__}: {exc}"
        self.logger.log(
            "query_deadline_exceeded",
            query_id=query_id,
            tenant=tenant,
            generation=generation,
            elapsed_seconds=round(elapsed, 6),
            error=error,
        )
        self._write_cancelled_trace(tracer, query_id, tenant, generation)
        self._record_query_row(
            query_id,
            tenant,
            "deadline_exceeded",
            elapsed,
            generation=generation,
            error=error,
        )
        self._capture_incident(
            "deadline_exceeded",
            query_id,
            tenant,
            sql,
            elapsed,
            generation=generation,
            tracer=tracer,
            error=exc,
        )

    def _note_cancelled(
        self,
        query_id: str,
        tenant: str,
        generation: int,
        elapsed: float,
        tracer,
        exc: Exception,
        sql: str = "",
    ) -> None:
        with self._lock:
            self._cancelled += 1
        self._m_cancelled.inc()
        self._observe_request_latency(elapsed)
        error = f"{type(exc).__name__}: {exc}"
        self.logger.log(
            "query_cancelled",
            query_id=query_id,
            tenant=tenant,
            generation=generation,
            elapsed_seconds=round(elapsed, 6),
            error=error,
        )
        self._write_cancelled_trace(tracer, query_id, tenant, generation)
        self._record_query_row(
            query_id,
            tenant,
            "cancelled",
            elapsed,
            generation=generation,
            error=error,
        )
        self._capture_incident(
            "cancelled",
            query_id,
            tenant,
            sql,
            elapsed,
            generation=generation,
            tracer=tracer,
            error=exc,
        )

    def _write_cancelled_trace(
        self, tracer, query_id: str, tenant: str, generation: int
    ) -> None:
        """Cancelled queries still export their (partial) span tree —
        the query span carries ``status="cancelled"`` (set by the
        session) so traces distinguish them from completed queries."""
        if tracer is None or self.trace_sink is None:
            return
        written = self.trace_sink.write(
            tracer,
            query_id=query_id,
            tenant=tenant,
            generation=generation,
            status="cancelled",
        )
        if written:
            self._m_spans.inc(written)
        if self.telemetry is not None:
            self.telemetry.record_spans(
                tracer, query_id, backend=self.system.session.worker_backend
            )

    # ------------------------------------------------------------------
    # system tables (self-hosted telemetry)
    # ------------------------------------------------------------------
    def _record_query_row(
        self,
        query_id: str,
        tenant: str,
        status: str,
        seconds: float,
        generation: int | None = None,
        reason: str = "",
        retry_after_seconds: float | None = None,
        error: str = "",
        metrics=None,
        rows: int | None = None,
    ) -> None:
        """Exactly one ``system.queries`` row per request outcome — the
        invariant the replay-reconciliation gate audits (row count ==
        completed + failed + shed + deadline_exceeded + cancelled)."""
        if self.telemetry is None:
            return
        row: dict[str, object] = {
            "query_id": query_id,
            "tenant": tenant,
            "status": status,
            "seconds": round(seconds, 6),
            "generation": (
                self.system.generation if generation is None else generation
            ),
            "backend": self.system.session.worker_backend,
            "reason": reason,
            "retry_after_seconds": (
                round(retry_after_seconds, 6)
                if retry_after_seconds is not None
                else None
            ),
            "result_cache": "",
            "plan_cache": "",
            "error": error,
        }
        if metrics is not None:
            extra = metrics.extra
            if extra.get("result_cache_hits"):
                row["result_cache"] = "hit"
            elif extra.get("result_cache_admissions"):
                row["result_cache"] = "admitted"
            elif extra.get("result_cache_rejections"):
                row["result_cache"] = "rejected"
            elif extra.get("result_cache_misses"):
                row["result_cache"] = "miss"
            if extra.get("plan_cache_hits"):
                row["plan_cache"] = "hit"
            elif extra.get("plan_cache_misses"):
                row["plan_cache"] = "miss"
            extras = {
                "parse_documents": metrics.parse_documents,
                "cache_hits": metrics.cache_hits,
                "cache_misses": metrics.cache_misses,
                "read_seconds": round(metrics.read_seconds, 6),
                "parse_seconds": round(metrics.parse_seconds, 6),
                "doc_cache_evictions": metrics.doc_cache_evictions,
            }
            for key, value in extra.items():
                if isinstance(value, (int, float, str, bool)):
                    extras[key] = value
            row["extras"] = extras
        if rows is not None:
            row["rows"] = rows
        self.telemetry.record("queries", row)

    def _capture_incident(
        self,
        kind: str,
        query_id: str,
        tenant: str,
        sql: str,
        seconds: float,
        generation: int | None = None,
        tracer=None,
        error: Exception | None = None,
        metrics=None,
        reason: str = "",
    ) -> None:
        """Flight recorder: a self-contained ``system.incidents`` record
        for slow, degraded, shed, deadline-exceeded, cancelled and failed
        queries — canonical statement + parameter hash, physical plan,
        full span tree, breaker/watchdog/admission state — enough to
        diagnose the query after the fact without its process alive."""
        if self.telemetry is None:
            return
        self._m_incidents.inc(kind=kind)
        fingerprint_text = ""
        params: tuple = ()
        try:
            from ..engine.resultcache import canonicalize

            canonical = canonicalize(sql, self.system.session.planner)
            if canonical is not None:
                fingerprint_text = canonical.text
                params = canonical.params
        except Exception:
            pass
        if not fingerprint_text:
            try:
                from ..engine.plancache import fingerprint

                fingerprint_text = fingerprint(sql)
            except Exception:
                fingerprint_text = sql
        params_hash = hashlib.sha256(
            repr(params).encode("utf-8")
        ).hexdigest()[:16]
        plan_text = ""
        try:
            plan_text = self.system.session.compile(sql).physical.describe()
        except Exception:
            plan_text = ""
        record: dict[str, object] = {
            "query_id": query_id,
            "kind": kind,
            "tenant": tenant,
            "sql": sql,
            "fingerprint": fingerprint_text,
            "seconds": round(seconds, 6),
            "params_hash": params_hash,
            "generation": (
                self.system.generation if generation is None else generation
            ),
            "backend": self.system.session.worker_backend,
            "plan": plan_text,
            "breaker": self.system.breaker.snapshot(),
            "admission": self.admission.snapshot(),
            "watchdog": (
                self.watchdog.snapshot() if self.watchdog is not None else {}
            ),
        }
        if reason:
            record["reason"] = reason
        if error is not None:
            record["error"] = f"{type(error).__name__}: {error}"
        if metrics is not None:
            record["extras"] = {
                key: value
                for key, value in metrics.extra.items()
                if isinstance(value, (int, float, str, bool))
            }
        if tracer is not None and tracer.root is not None:
            try:
                from ..obs.trace import export_subtree

                record["span_tree"] = export_subtree(tracer.root)
            except Exception:
                pass
        self.telemetry.record("incidents", record)

    def _note_worker_event(self, event: str, **fields) -> None:
        """Process-pool lifecycle observer → ``system.workers`` rows."""
        if self.telemetry is None:
            return
        self.telemetry.record(
            "workers",
            {
                "event": event,
                "worker": str(fields.pop("worker", "")),
                "backend": "process",
                "detail": (
                    json.dumps(fields, sort_keys=True, default=str)
                    if fields
                    else ""
                ),
            },
        )

    def _note_breaker_event(self, cache_table: str, state: str) -> None:
        """Circuit-breaker transition observer → ``system.cache_events``."""
        if self.telemetry is None:
            return
        self.telemetry.record(
            "cache_events",
            {
                "event": f"breaker_{state}",
                "table_name": cache_table,
                "generation": self.system.generation,
                "detail": "",
            },
        )

    def submit(
        self,
        sql: str,
        tenant: str | None = None,
        day: int | None = None,
        deadline_ms: float | None = None,
    ) -> Future:
        """Queue a request on the worker pool; the future resolves to a
        :class:`QueryResult` or raises the admission/engine error."""
        if self._closed or self._draining:
            raise RuntimeError("server is shut down")
        future = self._pool.submit(self.execute, sql, tenant, day, deadline_ms)
        with self._lock:
            self._outstanding.add(future)
        future.add_done_callback(self._outstanding.discard)
        return future

    def ingest(self, day: int, paths: tuple[PathKey, ...] | list[PathKey]) -> None:
        """Online statistics ingestion for non-SQL events (trace replay)."""
        self.system.collector.record_query(day, paths)
        with self._lock:
            self._stats_events += 1
        self._m_stats.inc()

    # ------------------------------------------------------------------
    # maintenance path (called by the scheduler, or directly)
    # ------------------------------------------------------------------
    def run_midnight_cycle(
        self, day: int | None = None, history_days: int = 7
    ) -> MidnightReport:
        """Build and atomically swap in the next cache generation."""
        tracer = None
        if self.trace_sink is not None:
            tracer = Tracer(trace_id=f"midnight-{self.system.generation + 1}")
        report = self.system.run_midnight_cycle(
            day=day, history_days=history_days, tracer=tracer
        )
        if tracer is not None:
            written = self.trace_sink.write(
                tracer,
                kind="midnight",
                day=report.day,
                generation=self.system.generation,
            )
            if written:
                self._m_spans.inc(written)
        self.logger.log(
            "midnight_cycle",
            day=report.day,
            generation=self.system.generation,
            cached_paths=len(report.selected),
            build_failed=report.build.failed,
        )
        if self.telemetry is not None:
            self.telemetry.record(
                "cache_events",
                {
                    "event": (
                        "generation_build_failed"
                        if report.build.failed
                        else "generation_swap"
                    ),
                    "table_name": "",
                    "generation": self.system.generation,
                    "detail": json.dumps(
                        {
                            "day": report.day,
                            "cached_paths": len(report.selected),
                            "build_seconds": round(
                                report.build.build_seconds, 6
                            ),
                        },
                        sort_keys=True,
                        default=str,
                    ),
                },
            )
        return report

    def refresh_cache(self):
        """Incrementally extend the live generation's cache tables."""
        return self.system.refresh_cache()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def status(self) -> ServerStatus:
        uptime = time.perf_counter() - self._started
        with self._lock:
            completed = self._completed
            failed = self._failed
            stats_events = self._stats_events
            tenants = dict(self._per_tenant_completed)
            totals = self._totals.snapshot()
            latencies = sorted(self._latencies)
            deadline_exceeded = self._deadline_exceeded
            cancelled = self._cancelled
            sheds = self._sheds
            shed_breakdown = dict(self._shed_breakdown)
            draining = self._draining
            drain_cancelled = self._drain_cancelled
        admission = self.admission.snapshot()
        guard = self.generation_guard.snapshot()
        maintenance = self.scheduler.snapshot()
        summary = self.system.cache_summary()
        resilience = self.system.resilience.snapshot()
        observability: dict[str, object] = {"log": self.logger.snapshot()}
        if self.trace_sink is not None:
            observability["trace"] = self.trace_sink.snapshot()
        if self.telemetry is not None:
            observability["telemetry"] = self.telemetry.snapshot()
        return ServerStatus(
            uptime_seconds=uptime,
            queries_completed=completed,
            queries_failed=failed,
            queries_shed=sheds,
            queries_timed_out=int(admission["timed_out"]),
            queries_deadline_exceeded=deadline_exceeded,
            queries_cancelled=cancelled,
            shed_breakdown=shed_breakdown,
            priority_admitted=int(admission["priority_admitted"]),
            draining=draining,
            drain_cancelled=drain_cancelled,
            watchdog=(
                self.watchdog.snapshot() if self.watchdog is not None else {}
            ),
            stats_events_ingested=stats_events,
            qps=completed / uptime if uptime > 0 else 0.0,
            latency_p50_seconds=percentile(latencies, 0.50),
            latency_p95_seconds=percentile(latencies, 0.95),
            latency_p99_seconds=percentile(latencies, 0.99),
            latency_max_seconds=latencies[-1] if latencies else 0.0,
            cache_hits=totals.cache_hits,
            cache_misses=totals.cache_misses,
            cache_hit_ratio=totals.cache_hit_ratio,
            generation=int(summary["generation"]),
            cached_paths=int(summary["cached_paths"]),
            cache_bytes=int(summary["cache_bytes"]),
            build_seconds=float(summary["build_seconds"]),
            midnight_cycles=int(maintenance["midnight_cycles"]),
            refreshes=int(maintenance["refreshes"]),
            queue_depth=int(admission["waiting"]),
            peak_queue_depth=int(admission["peak_waiting"]),
            active_queries=int(admission["active"]),
            active_leases=int(guard["active_leases"]),
            fallback_queries=int(resilience["fallback_queries"]),
            fallback_splits=int(resilience["fallback_splits"]),
            corruption_events=int(resilience["corruption_events"]),
            quarantine_skips=int(resilience["quarantine_skips"]),
            quarantined_tables=len(summary["quarantined_tables"]),
            query_retries=int(resilience["query_retries"]),
            build_failures=int(resilience["build_failures"]),
            recovery_actions=int(resilience["recovery_actions"]),
            execution_mode=self.system.session.execution_mode,
            worker_backend=self.system.session.worker_backend,
            duplicate_extractions_eliminated=(
                totals.duplicate_extractions_eliminated
            ),
            shared_parse_hits=totals.shared_parse_hits,
            tenants=tenants,
            totals=totals.to_dict(),
            result_cache=dict(summary["result_cache"]),
            cache_ledger=dict(summary["cache_ledger"]),
            slow_queries=self.logger.snapshot()["slow_queries"],
            cache_efficacy=self.system.efficacy.snapshot(),
            observability=observability,
        )

    def explain_analyze(
        self,
        sql: str,
        tenant: str | None = None,
        execution_mode: str | None = None,
    ) -> str:
        """Run one query under a fresh tracer (through admission and a
        generation lease, like any served query) and render the
        annotated plan."""
        tenant = tenant or self.config.default_tenant
        with self.admission.admit(tenant):
            generation = self.generation_guard.acquire()
            try:
                return self.system.explain_analyze(sql, execution_mode)
            finally:
                self.generation_guard.release(generation)

    def _sync_gauges(self, status: ServerStatus) -> None:
        self._g_generation.set(status.generation)
        self._g_cached_paths.set(status.cached_paths)
        self._g_cache_bytes.set(status.cache_bytes)
        self._g_queue_depth.set(status.queue_depth)
        self._g_active.set(status.active_queries)
        self._g_leases.set(status.active_leases)
        self._g_scan_workers.set(self.system.session.scan_workers)
        backend = self.system.session.worker_backend
        for candidate in ("thread", "process"):
            self._g_worker_backend.set(
                1 if candidate == backend else 0, backend=candidate
            )
        self._g_shm_bytes.set(self.system.session.live_shm_bytes())
        self._g_plan_cache_entries.set(
            int(self.system.session.plan_cache_stats()["entries"])
        )
        self._g_result_cache_entries.set(
            int(status.result_cache.get("entries", 0))
        )
        ledger = status.cache_ledger
        budget = ledger.get("budget_bytes")
        self._g_cache_budget_bytes.set(int(budget or 0))
        self._g_cache_budget_used.set(int(ledger.get("total_bytes", 0)))
        for tier, nbytes in dict(ledger.get("tiers", {})).items():
            self._g_cache_tier_bytes.set(int(nbytes), tier=tier)
        # Evictions happen inside the engine (no per-query extra), so the
        # counter advances by scrape-time delta against the stats total.
        evictions = int(status.result_cache.get("evictions", 0))
        delta = evictions - self._result_cache_evictions_seen
        if delta > 0:
            self._m_result_cache_evictions.inc(delta)
        self._result_cache_evictions_seen = evictions
        if status.watchdog:
            shrinks = int(status.watchdog.get("shrinks", 0))
            shrink_delta = shrinks - self._watchdog_shrinks_seen
            if shrink_delta > 0:
                self._m_watchdog_shrinks.inc(shrink_delta)
            self._watchdog_shrinks_seen = shrinks
            self._g_memory_pressure.set(
                1 if status.watchdog.get("under_pressure") else 0
            )
        if self.telemetry is not None:
            telemetry = self.telemetry.snapshot()
            self._g_telemetry_bytes.set(int(telemetry["bytes"]))
            self._g_telemetry_segments.set(int(telemetry["segments"]))
            # Store counters are cumulative; the Prometheus counters
            # advance by scrape-time delta (same pattern as evictions).
            for table, count in dict(telemetry["events"]).items():
                delta = count - self._telemetry_events_seen.get(table, 0)
                if delta > 0:
                    self._m_telemetry_events.inc(delta, table=table)
                self._telemetry_events_seen[table] = count
            dropped = int(telemetry["events_dropped"])
            if dropped > self._telemetry_dropped_seen:
                self._m_telemetry_dropped.inc(
                    dropped - self._telemetry_dropped_seen
                )
            self._telemetry_dropped_seen = dropped
            rotated = int(telemetry["segments_rotated"])
            if rotated > self._telemetry_rotated_seen:
                self._m_telemetry_rotated.inc(
                    rotated - self._telemetry_rotated_seen
                )
            self._telemetry_rotated_seen = rotated
        for record in status.cache_efficacy:
            generation = str(record.get("generation", 0))
            self._g_eff_precision.set(
                float(record.get("precision", 0.0)), generation=generation
            )
            self._g_eff_recall.set(
                float(record.get("recall", 0.0)), generation=generation
            )
            self._g_eff_byte_hit.set(
                float(record.get("byte_weighted_hit_ratio", 0.0)),
                generation=generation,
            )

    def metrics_text(self) -> str:
        """The Prometheus text exposition — the ``/metrics`` payload.

        Counters and histograms accrue on the request path; gauges are
        synchronised from a fresh status snapshot at scrape time.
        """
        self._sync_gauges(self.status())
        return self.metrics.to_prometheus()

    def metrics_snapshot(self) -> dict[str, object]:
        """JSON-safe view of every metric series (the snapshot API)."""
        self._sync_gauges(self.status())
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(
        self, wait: bool = True, drain_timeout: float | None = None
    ) -> None:
        """Graceful drain: stop admitting, let in-flight queries finish,
        cancel stragglers at the drain timeout, flush final status.

        ``drain_timeout`` (default ``config.drain_timeout_seconds``)
        bounds how long in-flight and pool-queued queries may keep
        running; whatever is still executing afterwards is cancelled
        cooperatively (it raises ``QueryCancelledError``), and queued
        futures that never started resolve to ``CancelledError``. With
        ``wait=False`` the pool is shut down without draining.
        """
        if drain_timeout is None:
            drain_timeout = self.config.drain_timeout_seconds
        with self._lock:
            already = self._closed
            self._closed = True
            self._draining = True
        if already:
            return
        stragglers: list[CancelToken] = []
        if wait:
            deadline = time.monotonic() + drain_timeout
            while time.monotonic() < deadline:
                with self._lock:
                    idle = not self._active_tokens and not self._outstanding
                if idle:
                    break
                time.sleep(0.002)
            with self._lock:
                stragglers = list(self._active_tokens)
            for token in stragglers:
                token.cancel("server drain timeout")
            with self._lock:
                self._drain_cancelled = len(stragglers)
        self._pool.shutdown(wait=wait, cancel_futures=bool(stragglers))
        # Tear down morsel worker pools: on the process backend this
        # exits the workers and unlinks the cancel-flag slab, so a
        # cleanly stopped server leaves no shared memory behind.
        self.system.session.close_worker_pools()
        self.logger.log(
            "server_drained",
            drain_timeout_seconds=drain_timeout,
            cancelled_in_flight=len(stragglers),
        )
        self.logger.log(
            "server_stopped",
            queries_completed=self._completed,
            queries_failed=self._failed,
            queries_cancelled=self._cancelled,
            queries_deadline_exceeded=self._deadline_exceeded,
            queries_shed=self._sheds,
        )
        self.logger.close()

    def __enter__(self) -> "MaxsonServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
