"""Memory-pressure watchdog over the unified cache ledger.

Ordering contract (DESIGN.md §13): under a soft memory limit the
watchdog first **shrinks caches** — the result tier yields its
lowest-benefit entries, then the plan tier its LRU entries — and only
if the ledger is still over the limit afterwards does the server **shed**
cold queries (probable result-cache hits keep flowing: serving them
*releases* pressure per byte better than anything else the server can
do). The cache-table **circuit breaker is never touched**: it encodes
correctness state (which cache tables are readable), not capacity, and
opening it would convert a memory problem into raw-parse amplification.

The watchdog is intentionally pull-based: :meth:`check` runs on the
request path (a ledger read is a lock + small sum), so pressure is
re-evaluated exactly as often as it can matter and no background thread
is needed.
"""

from __future__ import annotations

import threading

__all__ = ["MemoryWatchdog"]


class MemoryWatchdog:
    """Shrinks cache tiers under a soft byte limit, then reports pressure."""

    def __init__(
        self,
        session,
        soft_limit_bytes: int,
        shrink_headroom: float = 0.9,
    ) -> None:
        if soft_limit_bytes < 0:
            raise ValueError("soft_limit_bytes must be >= 0")
        if not 0.0 < shrink_headroom <= 1.0:
            raise ValueError("shrink_headroom must be in (0, 1]")
        self.session = session
        self.soft_limit_bytes = soft_limit_bytes
        #: Shrink below the limit by this factor so one admitted result
        #: does not immediately re-trigger the watchdog.
        self.shrink_headroom = shrink_headroom
        self._lock = threading.Lock()
        self.shrinks = 0
        self.bytes_reclaimed = 0
        self.pressure_events = 0
        self.under_pressure = False

    def check(self) -> bool:
        """Shrink if over the soft limit; True while pressure persists.

        "Pressure persists" means the budgeted tiers still exceed the
        soft limit *after* shrinking — i.e. the document tier (transient
        per-query state the watchdog cannot evict) alone is above the
        limit — which is the server's cue to shed cold queries.
        """
        ledger = self.session.cache_ledger
        shm = self._live_shm_bytes()
        total = ledger.total() + shm
        if total <= self.soft_limit_bytes:
            with self._lock:
                self.under_pressure = False
            return False
        # Live shared-memory segments (process-pool result transport)
        # count toward the limit but cannot be evicted — they drain as
        # the coordinator adopts them — so the cache tiers must shrink
        # into whatever room the SHM bytes leave.
        target = max(0, int(self.soft_limit_bytes * self.shrink_headroom) - shm)
        reclaimed = self.session.shrink_caches_to(target)
        still_over = ledger.total() + self._live_shm_bytes() > self.soft_limit_bytes
        with self._lock:
            self.shrinks += 1
            self.bytes_reclaimed += reclaimed
            if still_over:
                self.pressure_events += 1
            self.under_pressure = still_over
        return still_over

    def _live_shm_bytes(self) -> int:
        """Shared-memory bytes held by the session's process pool (0 on
        the thread backend or when the session predates the helper)."""
        fn = getattr(self.session, "live_shm_bytes", None)
        return int(fn()) if callable(fn) else 0

    def snapshot(self) -> dict[str, object]:
        shm = self._live_shm_bytes()
        with self._lock:
            return {
                "soft_limit_bytes": self.soft_limit_bytes,
                "shrinks": self.shrinks,
                "bytes_reclaimed": self.bytes_reclaimed,
                "pressure_events": self.pressure_events,
                "under_pressure": self.under_pressure,
                "shm_bytes": shm,
            }
