"""Concurrent Maxson query service.

The :mod:`repro.server` package turns the batch-oriented
:class:`~repro.core.system.MaxsonSystem` into a long-running service:
:class:`MaxsonServer` executes SQL from many logical tenants on a thread
pool behind admission control, ingests path statistics online, and keeps
serving while a :class:`MaintenanceScheduler` builds the next cache
generation and swaps it in atomically (retirement deferred by
:class:`GenerationGuard` until the last in-flight query drains).
"""

from .admission import (
    AdmissionController,
    AdmissionError,
    AdmissionTimeout,
    QueryShedError,
    QueueFullError,
)
from .config import ServerConfig
from .generation import GenerationGuard
from .replay import ReplayReport, ReplayRequest, build_replay_workload, replay
from .scheduler import MaintenanceScheduler, VirtualClock
from .service import MaxsonServer
from .status import ServerStatus, percentile
from .watchdog import MemoryWatchdog

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionTimeout",
    "QueueFullError",
    "QueryShedError",
    "ServerConfig",
    "MemoryWatchdog",
    "GenerationGuard",
    "MaintenanceScheduler",
    "VirtualClock",
    "MaxsonServer",
    "ServerStatus",
    "percentile",
    "ReplayRequest",
    "ReplayReport",
    "build_replay_workload",
    "replay",
]
