"""Admission control: per-tenant concurrency limits with a bounded queue.

Every request first passes the :class:`AdmissionController`:

* if the number of requests already *waiting* has reached the queue
  capacity, the request is **shed** immediately (:class:`QueueFullError`)
  — the load-shedding behaviour a saturated service needs to stay live;
* otherwise it waits until its tenant has a free slot, up to the
  admission timeout (:class:`AdmissionTimeout`);
* once admitted it occupies one tenant slot until released.

The controller is a single condition variable over per-tenant counters —
deliberately simple and fair-enough (wakeups race, but a tenant can
never exceed its limit and counters never drift)."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "AdmissionError",
    "QueueFullError",
    "AdmissionTimeout",
    "AdmissionController",
]


class AdmissionError(RuntimeError):
    """Base class: the request was not admitted."""


class QueueFullError(AdmissionError):
    """Shed on arrival: the admission queue was at capacity."""


class AdmissionTimeout(AdmissionError):
    """Gave up waiting for a tenant slot."""


class AdmissionController:
    """Bounded admission queue with per-tenant concurrency limits."""

    def __init__(
        self,
        per_tenant_limit: int,
        queue_capacity: int,
        timeout_seconds: float = 30.0,
    ) -> None:
        self.per_tenant_limit = per_tenant_limit
        self.queue_capacity = queue_capacity
        self.timeout_seconds = timeout_seconds
        self._cond = threading.Condition()
        self._active: dict[str, int] = {}
        self._waiting = 0
        # counters (guarded by the condition's lock)
        self.admitted = 0
        self.shed = 0
        self.timed_out = 0
        self.peak_waiting = 0
        self.per_tenant_admitted: dict[str, int] = {}

    # ------------------------------------------------------------------
    def acquire(self, tenant: str, timeout: float | None = None) -> None:
        """Block until ``tenant`` has a free slot; raise on shed/timeout."""
        limit = self.per_tenant_limit
        timeout = self.timeout_seconds if timeout is None else timeout
        deadline = time.monotonic() + timeout
        with self._cond:
            if self._active.get(tenant, 0) < limit and self._waiting == 0:
                self._admit(tenant)
                return
            if self._waiting >= self.queue_capacity:
                self.shed += 1
                raise QueueFullError(
                    f"admission queue full ({self.queue_capacity} waiting)"
                )
            self._waiting += 1
            self.peak_waiting = max(self.peak_waiting, self._waiting)
            try:
                while self._active.get(tenant, 0) >= limit:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.timed_out += 1
                        raise AdmissionTimeout(
                            f"tenant {tenant!r} waited {timeout:.3f}s "
                            f"for a slot (limit {limit})"
                        )
                    self._cond.wait(remaining)
                self._admit(tenant)
            finally:
                self._waiting -= 1

    def _admit(self, tenant: str) -> None:
        self._active[tenant] = self._active.get(tenant, 0) + 1
        self.admitted += 1
        self.per_tenant_admitted[tenant] = (
            self.per_tenant_admitted.get(tenant, 0) + 1
        )

    def release(self, tenant: str) -> None:
        with self._cond:
            count = self._active.get(tenant, 0)
            if count <= 1:
                self._active.pop(tenant, None)
            else:
                self._active[tenant] = count - 1
            self._cond.notify_all()

    @contextmanager
    def admit(self, tenant: str, timeout: float | None = None):
        """``with controller.admit(tenant): ...`` — acquire + release."""
        self.acquire(tenant, timeout)
        try:
            yield
        finally:
            self.release(tenant)

    # ------------------------------------------------------------------
    @property
    def waiting(self) -> int:
        with self._cond:
            return self._waiting

    @property
    def active(self) -> int:
        with self._cond:
            return sum(self._active.values())

    def snapshot(self) -> dict[str, object]:
        """Serializable queue/limit statistics."""
        with self._cond:
            return {
                "admitted": self.admitted,
                "shed": self.shed,
                "timed_out": self.timed_out,
                "waiting": self._waiting,
                "peak_waiting": self.peak_waiting,
                "active": sum(self._active.values()),
                "active_by_tenant": dict(self._active),
                "admitted_by_tenant": dict(self.per_tenant_admitted),
                "per_tenant_limit": self.per_tenant_limit,
                "queue_capacity": self.queue_capacity,
            }
