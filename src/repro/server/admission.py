"""Admission control: per-tenant concurrency limits with a bounded queue.

Every request first passes the :class:`AdmissionController`:

* if the number of requests already *waiting* has reached the queue
  capacity, the request is **shed** immediately (:class:`QueueFullError`)
  — the load-shedding behaviour a saturated service needs to stay live;
* a request carrying a **deadline** that cannot be met — already past,
  or closer than the caller's service-time estimate — is shed
  immediately with :class:`QueryShedError` (retry-after hint attached)
  instead of wasting queue time it cannot use;
* otherwise it waits until its tenant has a free slot, up to the
  admission timeout (:class:`AdmissionTimeout`); waiters are ordered by
  **priority** (then arrival) so cheap recurrences — result-cache
  probable hits — are admitted ahead of cold queries;
* once admitted it occupies one tenant slot until released.

The controller is a single condition variable over per-tenant counters
and a per-tenant ticket queue — deliberately simple and fair-enough
(wakeups race, but a tenant can never exceed its limit, tickets keep
FIFO-within-priority order, and counters never drift)."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from itertools import count

__all__ = [
    "AdmissionError",
    "QueueFullError",
    "AdmissionTimeout",
    "QueryShedError",
    "AdmissionController",
]


class AdmissionError(RuntimeError):
    """Base class: the request was not admitted."""


class QueueFullError(AdmissionError):
    """Shed on arrival: the admission queue was at capacity."""


class AdmissionTimeout(AdmissionError):
    """Gave up waiting for a tenant slot."""


class QueryShedError(AdmissionError):
    """Shed because the query could not finish by its deadline (or the
    service is under memory pressure). Carries a retry-after hint so
    well-behaved clients back off instead of hammering the queue."""

    def __init__(self, message: str, retry_after_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = max(0.0, retry_after_seconds)


class AdmissionController:
    """Bounded admission queue with per-tenant limits and priorities."""

    def __init__(
        self,
        per_tenant_limit: int,
        queue_capacity: int,
        timeout_seconds: float = 30.0,
    ) -> None:
        self.per_tenant_limit = per_tenant_limit
        self.queue_capacity = queue_capacity
        self.timeout_seconds = timeout_seconds
        self._cond = threading.Condition()
        self._active: dict[str, int] = {}
        self._waiting = 0
        #: Per-tenant waiting tickets, ``(-priority, seq)``: min() is the
        #: next waiter to admit — highest priority first, FIFO within.
        self._tickets: dict[str, list[tuple[int, int]]] = {}
        self._seq = count()
        # counters (guarded by the condition's lock)
        self.admitted = 0
        self.priority_admitted = 0
        self.shed = 0
        self.shed_deadline = 0
        self.timed_out = 0
        self.peak_waiting = 0
        self.per_tenant_admitted: dict[str, int] = {}

    # ------------------------------------------------------------------
    def acquire(
        self,
        tenant: str,
        timeout: float | None = None,
        priority: int = 0,
        deadline: float | None = None,
        service_estimate: float = 0.0,
    ) -> None:
        """Block until ``tenant`` has a free slot; raise on shed/timeout.

        ``deadline`` is an absolute ``time.monotonic()`` instant by which
        the *query* (not just admission) must finish; ``service_estimate``
        is the caller's expected execution seconds. A request that cannot
        be running by ``deadline - service_estimate`` is shed with
        :class:`QueryShedError` — immediately when already too late,
        otherwise the moment its wait crosses that cutoff.
        """
        limit = self.per_tenant_limit
        timeout = self.timeout_seconds if timeout is None else timeout
        now = time.monotonic()
        timeout_deadline = now + timeout
        shed_cutoff = None
        if deadline is not None:
            shed_cutoff = deadline - max(0.0, service_estimate)
            if now >= shed_cutoff:
                with self._cond:
                    self.shed_deadline += 1
                raise QueryShedError(
                    f"tenant {tenant!r}: query cannot finish by its "
                    f"deadline (estimated {service_estimate:.3f}s of work, "
                    f"{max(0.0, deadline - now):.3f}s remaining)",
                    retry_after_seconds=max(service_estimate, 0.001),
                )
        with self._cond:
            if self._active.get(tenant, 0) < limit and self._waiting == 0:
                self._admit(tenant, priority)
                return
            if self._waiting >= self.queue_capacity:
                self.shed += 1
                raise QueueFullError(
                    f"admission queue full ({self.queue_capacity} waiting)"
                )
            ticket = (-priority, next(self._seq))
            queue = self._tickets.setdefault(tenant, [])
            queue.append(ticket)
            self._waiting += 1
            self.peak_waiting = max(self.peak_waiting, self._waiting)
            try:
                while True:
                    if (
                        self._active.get(tenant, 0) < limit
                        and min(queue) == ticket
                    ):
                        self._admit(tenant, priority)
                        return
                    now = time.monotonic()
                    if shed_cutoff is not None and now >= shed_cutoff:
                        self.shed_deadline += 1
                        raise QueryShedError(
                            f"tenant {tenant!r}: deadline reached while "
                            f"waiting for a slot (limit {limit})",
                            retry_after_seconds=max(service_estimate, 0.001),
                        )
                    if now >= timeout_deadline:
                        self.timed_out += 1
                        raise AdmissionTimeout(
                            f"tenant {tenant!r} waited {timeout:.3f}s "
                            f"for a slot (limit {limit})"
                        )
                    wait_until = timeout_deadline
                    if shed_cutoff is not None:
                        wait_until = min(wait_until, shed_cutoff)
                    self._cond.wait(wait_until - now)
            finally:
                queue.remove(ticket)
                if not queue:
                    self._tickets.pop(tenant, None)
                self._waiting -= 1
                # The head ticket may have changed (or a waiter above us
                # gave up): let the remaining waiters re-evaluate.
                self._cond.notify_all()

    def _admit(self, tenant: str, priority: int = 0) -> None:
        self._active[tenant] = self._active.get(tenant, 0) + 1
        self.admitted += 1
        if priority > 0:
            self.priority_admitted += 1
        self.per_tenant_admitted[tenant] = (
            self.per_tenant_admitted.get(tenant, 0) + 1
        )

    def release(self, tenant: str) -> None:
        with self._cond:
            count_ = self._active.get(tenant, 0)
            if count_ <= 1:
                self._active.pop(tenant, None)
            else:
                self._active[tenant] = count_ - 1
            self._cond.notify_all()

    @contextmanager
    def admit(
        self,
        tenant: str,
        timeout: float | None = None,
        priority: int = 0,
        deadline: float | None = None,
        service_estimate: float = 0.0,
    ):
        """``with controller.admit(tenant): ...`` — acquire + release."""
        self.acquire(
            tenant,
            timeout,
            priority=priority,
            deadline=deadline,
            service_estimate=service_estimate,
        )
        try:
            yield
        finally:
            self.release(tenant)

    # ------------------------------------------------------------------
    @property
    def waiting(self) -> int:
        with self._cond:
            return self._waiting

    @property
    def active(self) -> int:
        with self._cond:
            return sum(self._active.values())

    def snapshot(self) -> dict[str, object]:
        """Serializable queue/limit statistics."""
        with self._cond:
            return {
                "admitted": self.admitted,
                "priority_admitted": self.priority_admitted,
                "shed": self.shed,
                "shed_deadline": self.shed_deadline,
                "timed_out": self.timed_out,
                "waiting": self._waiting,
                "peak_waiting": self.peak_waiting,
                "active": sum(self._active.values()),
                "active_by_tenant": dict(self._active),
                "admitted_by_tenant": dict(self.per_tenant_admitted),
                "per_tenant_limit": self.per_tenant_limit,
                "queue_capacity": self.queue_capacity,
            }
