"""Maintenance scheduling on a virtual clock.

Production Maxson runs its cycle at literal midnight; the reproduction
compresses time. :class:`VirtualClock` counts seconds since day 0 and
:class:`MaintenanceScheduler` fires the background maintenance a live
deployment needs as the clock advances:

* one **midnight cycle** per crossed day boundary (predict → score →
  select → build next cache generation → atomic swap);
* an **incremental refresh** every ``refresh_interval_seconds`` of
  virtual time, appending cache files for raw partitions that landed
  after the generation was built (and repairing invalidated tables).

The scheduler is driven, not threaded: the replay driver (or an
embedding application's timer) calls :meth:`advance_to`. That keeps
every run deterministic while exercising exactly the concurrent
query-vs-maintenance interleavings the server must survive, because the
caller advancing the clock runs the cycles *while query threads are in
flight*.
"""

from __future__ import annotations

import threading

__all__ = ["VirtualClock", "MaintenanceScheduler"]


class VirtualClock:
    """Monotonic virtual seconds, partitioned into days."""

    def __init__(self, seconds_per_day: float = 86400.0, start_day: int = 0) -> None:
        if seconds_per_day <= 0:
            raise ValueError("seconds_per_day must be positive")
        self.seconds_per_day = seconds_per_day
        self._seconds = start_day * seconds_per_day
        self._lock = threading.Lock()

    @property
    def seconds(self) -> float:
        with self._lock:
            return self._seconds

    @property
    def day(self) -> int:
        return int(self.seconds // self.seconds_per_day)

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError("the clock only moves forward")
        with self._lock:
            self._seconds += seconds
            return self._seconds

    def advance_to(self, seconds: float) -> float:
        """Move the clock to an absolute time (never backwards)."""
        with self._lock:
            self._seconds = max(self._seconds, seconds)
            return self._seconds


class MaintenanceScheduler:
    """Fires midnight cycles and cache refreshes as virtual time passes."""

    def __init__(
        self,
        server,
        clock: VirtualClock | None = None,
        refresh_interval_seconds: float = 0.0,
        history_days: int = 7,
    ) -> None:
        self.server = server
        self.clock = clock or VirtualClock()
        self.refresh_interval_seconds = refresh_interval_seconds
        self.history_days = history_days
        self._lock = threading.Lock()
        self._last_cycle_day = self.clock.day
        self._last_refresh_seconds = self.clock.seconds
        self.reports: list = []
        self.refreshes = 0
        self.failed_cycles = 0
        self.failed_refreshes = 0

    # ------------------------------------------------------------------
    def advance_to(self, seconds: float) -> list[str]:
        """Advance the clock and run any maintenance that came due.

        Returns labels of the actions performed (for logs/tests). Runs
        in the caller's thread, concurrently with query workers — the
        interleaving the generation swap protocol exists for.
        """
        self.clock.advance_to(seconds)
        actions: list[str] = []
        with self._lock:  # maintenance itself is serialised
            day = self.clock.day
            while self._last_cycle_day < day:
                target = self._last_cycle_day + 1
                try:
                    report = self.server.run_midnight_cycle(
                        day=target, history_days=self.history_days
                    )
                    self.reports.append(report)
                    actions.append(f"midnight:{target}")
                except Exception:
                    # A cycle that died before reaching the protected
                    # build (e.g. a transient fault while scoring) must
                    # not kill the caller driving the clock — the old
                    # generation keeps serving and the next midnight
                    # tries again. (A simulated process crash is a
                    # BaseException and still propagates.)
                    self.failed_cycles += 1
                    self.server.system.resilience.add("build_failures")
                    actions.append(f"midnight_failed:{target}")
                self._last_cycle_day = target
            if self.refresh_interval_seconds > 0:
                now = self.clock.seconds
                if (
                    now - self._last_refresh_seconds
                    >= self.refresh_interval_seconds
                ):
                    try:
                        self.server.refresh_cache()
                        actions.append("refresh")
                        self.refreshes += 1
                    except Exception:
                        self.failed_refreshes += 1
                        self.server.system.resilience.add("build_failures")
                        actions.append("refresh_failed")
                    self._last_refresh_seconds = now
        return actions

    def advance_days(self, days: int = 1) -> list[str]:
        """Convenience: cross ``days`` midnight boundaries."""
        target = (self.clock.day + days) * self.clock.seconds_per_day
        return self.advance_to(target)

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "virtual_day": self.clock.day,
                "virtual_seconds": self.clock.seconds,
                "midnight_cycles": len(self.reports),
                "refreshes": self.refreshes,
                "failed_cycles": self.failed_cycles,
                "failed_refreshes": self.failed_refreshes,
            }
