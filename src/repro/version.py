"""Package version, importable without triggering heavy imports."""

__version__ = "1.0.0"
