"""The ten experiment tables of the paper's Table II.

Each representative query Q1..Q10 runs against its own table whose JSON
documents match the published characteristics: number of JSONPaths used by
the query, total property count, nesting level, and average JSON size in
bytes. The actual data values are synthetic (the paper does the same:
"we synthetically generate ... data for each table by following the real
data hierarchies and formats").

:class:`DocumentFactory` builds deterministic documents for a spec and
exposes the leaf JSONPaths; :func:`load_tables` materialises the tables
into a catalog.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..engine.catalog import Catalog
from ..jsonlib.jackson import dumps
from ..storage.schema import DataType, Schema

__all__ = ["TableSpec", "TABLE_SPECS", "DocumentFactory", "load_tables"]


@dataclass(frozen=True)
class TableSpec:
    """One row of the paper's Table II."""

    query_id: str
    path_count: int
    property_count: int
    nesting_level: int
    avg_json_bytes: int
    selective: bool = False
    """Whether the query filters on a JSON field (Q2/Q9 per Fig 12)."""

    @property
    def table(self) -> str:
        return f"t_{self.query_id.lower()}"

    @property
    def database(self) -> str:
        return "prod"

    @property
    def json_column(self) -> str:
        return "payload"


#: Table II of the paper, verbatim characteristics.
TABLE_SPECS: list[TableSpec] = [
    TableSpec("Q1", 11, 11, 1, 408),
    TableSpec("Q2", 10, 17, 1, 655, selective=True),
    TableSpec("Q3", 10, 206, 4, 4830),
    TableSpec("Q4", 1, 215, 4, 4736),
    TableSpec("Q5", 12, 26, 3, 582),
    TableSpec("Q6", 29, 107, 5, 2031),
    TableSpec("Q7", 3, 12, 2, 252),
    TableSpec("Q8", 5, 17, 1, 368),
    TableSpec("Q9", 1, 319, 3, 21459, selective=True),
    TableSpec("Q10", 8, 90, 1, 8692),
]


class DocumentFactory:
    """Deterministic JSON documents for one :class:`TableSpec`.

    Structure: properties are distributed over ``nesting_level`` levels —
    level 1 keys sit at the root, deeper levels inside a chain of nested
    objects ``n1``, ``n1.n2``, ... Query paths (the first
    ``spec.path_count`` leaf paths, spread across levels) carry typed
    values usable in predicates and aggregates; the remaining properties
    are string filler sized so the average serialised document hits
    ``spec.avg_json_bytes``.
    """

    def __init__(self, spec: TableSpec, seed: int = 11, metric_scale: int = 1) -> None:
        self.spec = spec
        self.seed = seed
        self.metric_scale = max(1, metric_scale)
        self._layout = self._build_layout()
        self._filler_len = 4
        self._category_pad = 0
        self._calibrate()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _build_layout(self) -> list[tuple[int, str]]:
        """[(level, key)] for every scalar property, level 1-based."""
        spec = self.spec
        levels = max(spec.nesting_level, 1)
        out: list[tuple[int, str]] = []
        for i in range(spec.property_count):
            level = (i % levels) + 1 if levels > 1 else 1
            out.append((level, f"f{i:03d}"))
        return out

    def leaf_paths(self) -> list[str]:
        """All leaf JSONPaths of the document, layout order."""
        paths = []
        for level, key in self._layout:
            prefix = "".join(f".n{d}" for d in range(1, level))
            paths.append(f"${prefix}.{key}")
        return paths

    def query_paths(self) -> list[str]:
        """The ``path_count`` paths the representative query accesses.

        Spread across levels (stride sampling) so deep tables exercise
        deep paths, matching Table II's nesting levels.
        """
        paths = self.leaf_paths()
        count = self.spec.path_count
        if count >= len(paths):
            return paths
        stride = max(1, len(paths) // count)
        picked = [paths[i * stride] for i in range(count)]
        return picked

    def numeric_query_paths(self) -> list[str]:
        """Query paths whose values are integers (usable in predicates)."""
        return self._paths_of_kind(0)

    def category_query_paths(self) -> list[str]:
        """Query paths with low-cardinality string values (join/group keys)."""
        return self._paths_of_kind(1)

    def _paths_of_kind(self, kind: int) -> list[str]:
        query_set = set(self.query_paths())
        out = []
        for position, path in enumerate(self.leaf_paths()):
            if path in query_set and position % 3 == kind:
                out.append(path)
        return out

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def document(self, index: int) -> dict:
        rng = random.Random((self.seed << 32) ^ index)
        query_set = set(self.query_paths())
        root: dict[str, object] = {}
        # Pre-create the nesting chain.
        containers: list[dict] = [root]
        for depth in range(1, self.spec.nesting_level):
            inner: dict[str, object] = {}
            containers[depth - 1][f"n{depth}"] = inner
            containers.append(inner)
        for position, ((level, key), path) in enumerate(
            zip(self._layout, self.leaf_paths())
        ):
            container = containers[level - 1]
            if path in query_set:
                container[key] = self._query_value(position, index, rng)
            else:
                container[key] = self._filler_value(rng)
        return root

    def _query_value(self, position: int, index: int, rng: random.Random):
        kind = position % 3
        if kind == 0:
            # Numeric metric increasing with row index (wrapping at 10k):
            # consecutive rows cluster, so row-group min/max statistics are
            # tight and predicate pushdown can eliminate groups.
            # ``metric_scale`` stretches small tables over the full value
            # range so fixed selectivity thresholds stay meaningful.
            return (index * self.metric_scale + position * 7) % 10_000
        if kind == 1:
            # Low-cardinality category; padded during calibration for
            # tables whose query paths cover every property.
            value = f"c{rng.randint(0, 19):02d}"
            if self._category_pad:
                value += "x" * self._category_pad
            return value
        return rng.randint(0, 999)

    def _filler_value(self, rng: random.Random) -> str:
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        return "".join(rng.choice(alphabet) for _ in range(self._filler_len))

    def _calibrate(self) -> None:
        """Size the filler (or category padding) to hit the target bytes.

        Tables where the query touches every property have no filler
        fields; their category-valued query paths absorb the padding
        instead.
        """
        has_filler = self.spec.property_count > self.spec.path_count

        def measure(length: int) -> int:
            if has_filler:
                self._filler_len = length
            else:
                self._category_pad = length
            return len(dumps(self.document(0)))

        target = self.spec.avg_json_bytes
        low, high = 0, 8192
        best = 0
        while low <= high:
            mid = (low + high) // 2
            if measure(mid) <= target:
                best = mid
                low = mid + 1
            else:
                high = mid - 1
        measure(best)

    def json(self, index: int) -> str:
        return dumps(self.document(index))

    def average_size(self, sample: int = 20) -> float:
        return sum(len(self.json(i)) for i in range(sample)) / sample


def table_schema() -> Schema:
    """Common schema of the ten tables: (id, date, payload-json)."""
    return Schema.of(
        ("id", DataType.INT64),
        ("date", DataType.STRING),
        ("payload", DataType.STRING),
    )


def load_tables(
    catalog: Catalog,
    rows_per_table: int = 1000,
    days: int = 3,
    specs: list[TableSpec] | None = None,
    row_group_size: int = 100,
    start_date: int = 20190101,
) -> dict[str, DocumentFactory]:
    """Create and populate the Table II tables.

    Rows are split evenly over ``days`` daily partitions (one file per
    day, the production append pattern). Returns the factory per query id
    so callers can recover paths and document shapes.
    """
    factories: dict[str, DocumentFactory] = {}
    metric_scale = max(1, 10_000 // max(rows_per_table, 1))
    for spec in specs if specs is not None else TABLE_SPECS:
        factory = DocumentFactory(spec, metric_scale=metric_scale)
        factories[spec.query_id] = factory
        if not catalog.table_exists(spec.database, spec.table):
            catalog.create_table(spec.database, spec.table, table_schema())
        per_day = max(1, rows_per_table // days)
        index = 0
        for day in range(days):
            date = str(start_date + day)
            rows = []
            for _ in range(per_day):
                rows.append((index, date, factory.json(index)))
                index += 1
            catalog.append_rows(
                spec.database, spec.table, rows, row_group_size=row_group_size
            )
    return factories
