"""Workload analysis: the paper's §II study as reusable measurements.

Produces the statistics the paper derives from the production trace —
temporal correlation (recurring shares), spatial correlation (path
popularity skew), redundant-parse traffic, and the update-time histogram
— plus a plain-text report. The fig2/fig4 benchmarks and the examples
consume these instead of re-deriving them ad hoc.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .trace import SyntheticTrace

__all__ = ["WorkloadReport", "analyze", "format_report"]


@dataclass(frozen=True)
class WorkloadReport:
    """Summary statistics of one trace."""

    total_queries: int
    total_paths: int
    days: int
    recurring_fraction: float
    daily_fraction_of_recurring: float
    weekly_fraction_of_recurring: float
    multiday_window_fraction_of_recurring: float
    avg_queries_per_path: float
    max_queries_per_path: int
    traffic_share_top_27pct: float
    duplicate_parse_fraction: float
    update_histogram: tuple[int, ...]
    peak_update_hour: int

    def paper_deltas(self) -> dict[str, tuple[float, float]]:
        """(measured, paper) pairs for the published §II statistics."""
        return {
            "recurring_fraction": (self.recurring_fraction, 0.82),
            "daily_fraction_of_recurring": (self.daily_fraction_of_recurring, 0.71),
            "weekly_fraction_of_recurring": (self.weekly_fraction_of_recurring, 0.17),
            "multiday_window_fraction": (
                self.multiday_window_fraction_of_recurring,
                0.07,
            ),
            "traffic_share_top_27pct": (self.traffic_share_top_27pct, 0.89),
            "duplicate_parse_fraction": (self.duplicate_parse_fraction, 0.89),
            "avg_queries_per_path": (self.avg_queries_per_path, 14.0),
        }


def analyze(trace: SyntheticTrace) -> WorkloadReport:
    """Compute the §II statistics for a trace."""
    queries = trace.queries
    recurring = [q for q in queries if q.recurring]
    kinds = Counter(q.kind for q in recurring)
    n_recurring = max(len(recurring), 1)

    per_path = trace.queries_per_path()
    redundant = 0
    total_parses = 0
    per_day_path: dict[tuple[int, object], int] = {}
    for query in queries:
        for key in query.paths:
            day_key = (query.day, key)
            per_day_path[day_key] = per_day_path.get(day_key, 0) + 1
    for count in per_day_path.values():
        total_parses += count
        redundant += count - 1

    histogram = trace.update_hour_histogram()
    return WorkloadReport(
        total_queries=len(queries),
        total_paths=len(trace.path_universe),
        days=trace.config.days,
        recurring_fraction=trace.recurring_fraction(),
        daily_fraction_of_recurring=kinds.get("daily", 0) / n_recurring,
        weekly_fraction_of_recurring=kinds.get("weekly", 0) / n_recurring,
        multiday_window_fraction_of_recurring=kinds.get("daily_window", 0)
        / n_recurring,
        avg_queries_per_path=(
            sum(per_path.values()) / len(per_path) if per_path else 0.0
        ),
        max_queries_per_path=max(per_path.values(), default=0),
        traffic_share_top_27pct=trace.traffic_concentration(0.27),
        duplicate_parse_fraction=(
            redundant / total_parses if total_parses else 0.0
        ),
        update_histogram=tuple(int(v) for v in histogram),
        peak_update_hour=int(np.argmax(histogram)) if histogram.sum() else 0,
    )


def format_report(report: WorkloadReport) -> str:
    """Readable rendition, with the paper's figures alongside."""
    lines = [
        "Workload analysis (paper SSII)",
        "=" * 46,
        f"queries: {report.total_queries:,} over {report.days} days, "
        f"{report.total_paths} JSONPaths",
        "",
        f"{'statistic':<34}{'measured':>9}{'paper':>8}",
        "-" * 51,
    ]
    for name, (measured, paper) in report.paper_deltas().items():
        if name == "avg_queries_per_path":
            lines.append(f"{name:<34}{measured:9.1f}{paper:8.1f}")
        else:
            lines.append(f"{name:<34}{measured:9.1%}{paper:8.0%}")
    lines.append("")
    lines.append(
        f"table updates peak at hour {report.peak_update_hour:02d}; "
        f"midnight bins: {report.update_histogram[0]}, "
        f"{report.update_histogram[23]}"
    )
    return "\n".join(lines)
