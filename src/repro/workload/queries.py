"""The ten representative SQL queries (paper Table II).

Each query is generated against its table's :class:`DocumentFactory` so
that the number of distinct JSONPaths it touches equals the paper's
"JSONPath number" column. The query *shapes* cover the workload families
of the paper's §II-C: plain projections, filtered scans, group-by
aggregation, a self-equijoin, and order-by/limit top-k — with Q2 and Q9
carrying predicates on JSON fields (the predicate-pushdown queries of
Fig 12).
"""

from __future__ import annotations

from dataclasses import dataclass

from .tables import DocumentFactory

__all__ = ["RepresentativeQuery", "build_queries"]


@dataclass(frozen=True)
class RepresentativeQuery:
    """One representative query and its JSONPath footprint."""

    query_id: str
    sql: str
    database: str
    table: str
    column: str
    paths: tuple[str, ...]
    """Distinct JSONPaths the query parses (Table II's JSONPath number)."""


def _gjo(column: str, path: str) -> str:
    return f"get_json_object({column}, '{path}')"


def _select_list(column: str, paths: list[str]) -> str:
    parts = []
    for i, path in enumerate(paths):
        parts.append(f"{_gjo(column, path)} as v{i}")
    return ", ".join(parts)


def build_queries(
    factories: dict[str, DocumentFactory],
    date_low: str = "20190101",
    date_high: str = "20190103",
    metric_threshold: int = 9000,
) -> dict[str, RepresentativeQuery]:
    """Build Q1..Q10 against the loaded tables.

    ``factories`` is the mapping returned by
    :func:`repro.workload.tables.load_tables`. ``metric_threshold`` sets
    the selectivity of the JSON predicates in Q2/Q9 — metric values span
    [0, 10000), so the default keeps roughly the top decile (provided the
    tables hold enough rows to cover the value range).
    """
    queries: dict[str, RepresentativeQuery] = {}
    for query_id, factory in factories.items():
        spec = factory.spec
        builder = _BUILDERS[query_id]
        sql, paths = builder(factory, date_low, date_high, metric_threshold)
        queries[query_id] = RepresentativeQuery(
            query_id=query_id,
            sql=sql,
            database=spec.database,
            table=spec.table,
            column=spec.json_column,
            paths=tuple(paths),
        )
    return queries


def _simple_select(factory: DocumentFactory, lo: str, hi: str, threshold: int):
    """Plain projection of every query path (Q1, Q6 shape)."""
    spec = factory.spec
    paths = factory.query_paths()
    sql = (
        f"select id, {_select_list(spec.json_column, paths)} "
        f"from {spec.database}.{spec.table} "
        f"where date between '{lo}' and '{hi}'"
    )
    return sql, paths


def _filtered_groupby(factory: DocumentFactory, lo: str, hi: str, threshold: int):
    """Selective JSON predicate + group-by count (Q2 shape)."""
    spec = factory.spec
    paths = factory.query_paths()
    numeric = factory.numeric_query_paths()
    metric = numeric[0]
    category = next(
        (p for p in paths if p not in numeric), paths[-1]
    )
    others = [p for p in paths if p not in (metric, category)]
    sql = (
        f"select {_gjo(spec.json_column, category)} as grp, count(*) as cnt, "
        + ", ".join(
            f"max({_gjo(spec.json_column, p)}) as m{i}" for i, p in enumerate(others)
        )
        + f" from {spec.database}.{spec.table} "
        f"where date between '{lo}' and '{hi}' "
        f"and {_gjo(spec.json_column, metric)} > {threshold} "
        f"group by {_gjo(spec.json_column, category)}"
    )
    return sql, paths


def _self_join(factory: DocumentFactory, lo: str, hi: str, threshold: int):
    """Self-equijoin on a JSON key (Q3 shape)."""
    spec = factory.spec
    paths = factory.query_paths()
    categories = factory.category_query_paths()
    key = categories[0] if categories else paths[0]
    payload = spec.json_column
    select_paths = [p for p in paths if p != key]
    half = len(select_paths) // 2
    a_paths = select_paths[:half]
    b_paths = select_paths[half:]
    select = ", ".join(
        [f"get_json_object(a.{payload}, '{p}') as a{i}" for i, p in enumerate(a_paths)]
        + [f"get_json_object(b.{payload}, '{p}') as b{i}" for i, p in enumerate(b_paths)]
    )
    sql = (
        f"select {select} "
        f"from {spec.database}.{spec.table} a "
        f"join {spec.database}.{spec.table} b "
        f"on get_json_object(a.{payload}, '{key}') = "
        f"get_json_object(b.{payload}, '{key}') "
        f"where a.date = '{lo}' and b.date = '{hi}'"
    )
    return sql, paths


def _single_aggregate(factory: DocumentFactory, lo: str, hi: str, threshold: int):
    """Global aggregate over one deep path (Q4 shape)."""
    spec = factory.spec
    paths = factory.query_paths()
    numeric = factory.numeric_query_paths()
    target = numeric[0] if numeric else paths[0]
    sql = (
        f"select avg({_gjo(spec.json_column, target)}) as avg_value, "
        f"count(*) as cnt "
        f"from {spec.database}.{spec.table} "
        f"where date between '{lo}' and '{hi}'"
    )
    return sql, [target]


def _ordered_select(factory: DocumentFactory, lo: str, hi: str, threshold: int):
    """Projection ordered by a JSON metric, top-k (Q5, Q8, Q10 shape)."""
    spec = factory.spec
    paths = factory.query_paths()
    numeric = factory.numeric_query_paths()
    order_key = numeric[0] if numeric else paths[0]
    sql = (
        f"select id, {_select_list(spec.json_column, paths)} "
        f"from {spec.database}.{spec.table} "
        f"where date between '{lo}' and '{hi}' "
        f"order by {_gjo(spec.json_column, order_key)} desc limit 100"
    )
    return sql, paths


def _small_groupby(factory: DocumentFactory, lo: str, hi: str, threshold: int):
    """Group-by with sum over few paths (Q7 shape)."""
    spec = factory.spec
    paths = factory.query_paths()
    numeric = factory.numeric_query_paths()
    metric = numeric[0] if numeric else paths[0]
    category = next((p for p in paths if p != metric), paths[-1])
    rest = [p for p in paths if p not in (metric, category)]
    extra = ", ".join(
        f"min({_gjo(spec.json_column, p)}) as x{i}" for i, p in enumerate(rest)
    )
    extra = f", {extra}" if extra else ""
    sql = (
        f"select {_gjo(spec.json_column, category)} as grp, "
        f"sum({_gjo(spec.json_column, metric)}) as total{extra} "
        f"from {spec.database}.{spec.table} "
        f"where date between '{lo}' and '{hi}' "
        f"group by {_gjo(spec.json_column, category)}"
    )
    return sql, paths


def _selective_single(factory: DocumentFactory, lo: str, hi: str, threshold: int):
    """Highly selective predicate on the single queried path (Q9 shape)."""
    spec = factory.spec
    numeric = factory.numeric_query_paths()
    paths = factory.query_paths()
    target = numeric[0] if numeric else paths[0]
    sql = (
        f"select id, {_gjo(spec.json_column, target)} as metric "
        f"from {spec.database}.{spec.table} "
        f"where date between '{lo}' and '{hi}' "
        f"and {_gjo(spec.json_column, target)} > {threshold}"
    )
    return sql, [target]


_BUILDERS = {
    "Q1": _simple_select,
    "Q2": _filtered_groupby,
    "Q3": _self_join,
    "Q4": _single_aggregate,
    "Q5": _ordered_select,
    "Q6": _simple_select,
    "Q7": _small_groupby,
    "Q8": _ordered_select,
    "Q9": _selective_single,
    "Q10": _ordered_select,
}
