"""Workload substrate: trace, document, table and query generators."""

from .analysis import WorkloadReport, analyze, format_report
from .nobench import NoBenchConfig, NoBenchGenerator
from .queries import RepresentativeQuery, build_queries
from .tables import TABLE_SPECS, DocumentFactory, TableSpec, load_tables
from .trace import (
    PathKey,
    SyntheticTrace,
    TableUpdate,
    TraceConfig,
    TraceQuery,
)

__all__ = [
    "WorkloadReport",
    "analyze",
    "format_report",
    "NoBenchConfig",
    "NoBenchGenerator",
    "TableSpec",
    "TABLE_SPECS",
    "DocumentFactory",
    "load_tables",
    "RepresentativeQuery",
    "build_queries",
    "PathKey",
    "TraceQuery",
    "TableUpdate",
    "TraceConfig",
    "SyntheticTrace",
]
