"""Synthetic Alibaba-style query trace.

The paper's predictor and cache are driven by a five-month production
trace whose *published statistics* are the contract this generator
honours:

* ~82% of queries come from recurring templates; of those ~71% repeat
  daily (a further ~7% with multi-day windows) and ~17% weekly
  (paper §II-D1);
* JSONPath popularity is heavily skewed: a small fraction of paths
  receives most of the parse traffic (§II-D2: "89% of the parsing traffic
  are on 27% JSONPaths", ~14 queries per path on average);
* table updates cluster around midday and are rare at midnight (Fig 2);
* queries only touch data loaded before the current day.

The generator is seeded and deterministic. Every query event carries the
JSONPaths it parses, so the trace can drive the collector, the predictor,
the online-LRU replay, and the workload-analysis figures without ever
materialising real SQL for the bulk of the 3M-query-scale runs.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = ["PathKey", "TraceQuery", "TableUpdate", "TraceConfig", "SyntheticTrace"]


@dataclass(frozen=True, order=True)
class PathKey:
    """Fully qualified JSONPath location: (db, table, column, path)."""

    database: str
    table: str
    column: str
    path: str


@dataclass(frozen=True)
class TraceQuery:
    """One executed query in the trace."""

    day: int
    seconds: int
    """Submission time within the day, seconds since midnight."""
    user: str
    template_id: int
    """Recurring template this firing belongs to; -1 for ad-hoc queries."""
    kind: str
    """'daily' | 'daily_window' | 'weekly' | 'adhoc'."""
    paths: tuple[PathKey, ...]
    window_days: int = 1

    @property
    def recurring(self) -> bool:
        return self.template_id >= 0


@dataclass(frozen=True)
class TableUpdate:
    """One table load event."""

    day: int
    seconds: int
    database: str
    table: str


@dataclass(frozen=True)
class TraceConfig:
    """Scale and mixture knobs; defaults reproduce the paper's shape at
    laptop scale (the real trace has ~3M queries over ~24k tables)."""

    days: int = 150
    users: int = 60
    tables: int = 40
    paths_per_table: tuple[int, int] = (8, 30)
    templates_per_user: tuple[int, int] = (2, 6)
    paths_per_query: tuple[int, int] = (2, 12)
    recurring_fraction: float = 0.82
    daily_share: float = 0.71
    daily_window_share: float = 0.07
    weekly_share: float = 0.17
    fire_probability: float = 0.98
    burst_fraction: float = 0.35
    """Fraction of template groups with an on/off burst schedule. Burst
    and weekly groups are the temporally-structured positives that only
    sequence models predict well — the mechanism behind the recall gap in
    the paper's Table III."""
    churn_fraction: float = 0.12
    """Fraction of groups that retire before the trace ends (their
    disappearance is unpredictable and bounds every model's precision)."""
    zipf_alpha: float = 2.0
    adhoc_zipf_alpha: float = 3.0
    """Ad-hoc queries concentrate even harder on the popular paths, so
    they rarely flip the MPJP label of a mid-popularity path."""
    adhoc_per_day: float = 10.0
    seed: int = 2020


@dataclass
class _Template:
    template_id: int
    user: str
    kind: str
    paths: tuple[PathKey, ...]
    hour: int
    window_days: int
    weekday: int
    start_day: int
    end_day: int
    burst_period: int
    """0 = always active; k>0 = active k days out of every 2k (bursty)."""


class SyntheticTrace:
    """Deterministic synthetic workload trace.

    Attributes
    ----------
    queries:
        Chronologically ordered :class:`TraceQuery` events.
    updates:
        :class:`TableUpdate` events (one per table per day).
    path_universe:
        Every :class:`PathKey` that exists in the synthetic warehouse.
    """

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.path_universe: list[PathKey] = []
        self._table_paths: dict[str, list[PathKey]] = {}
        self.templates: list[_Template] = []
        self.queries: list[TraceQuery] = []
        self.updates: list[TableUpdate] = []
        self._build_universe()
        self._build_templates()
        self._generate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_universe(self) -> None:
        cfg = self.config
        rng = self._rng
        lo, hi = cfg.paths_per_table
        for t in range(cfg.tables):
            table = f"t{t:03d}"
            n_paths = int(rng.integers(lo, hi + 1))
            paths = [
                PathKey("wh", table, "payload", f"$.f{i:03d}")
                for i in range(n_paths)
            ]
            self._table_paths[table] = paths
            self.path_universe.extend(paths)

    def _zipf_sample(
        self, pool: list[PathKey], count: int, alpha: float | None = None
    ) -> tuple[PathKey, ...]:
        """Sample ``count`` distinct paths with Zipf-ranked popularity."""
        if count <= 0:
            return ()
        ranks = np.arange(1, len(pool) + 1, dtype=float)
        weights = ranks ** (-(alpha if alpha is not None else self.config.zipf_alpha))
        weights /= weights.sum()
        count = min(count, len(pool))
        chosen = self._rng.choice(len(pool), size=count, replace=False, p=weights)
        return tuple(pool[i] for i in sorted(chosen))

    def _build_templates(self) -> None:
        """Templates come in *groups* sharing a path theme.

        A group models one user's suite of related queries over one table
        — the paper's Fig 1 pattern, where two daily queries both parse
        ``item_name`` and ``item_id``. Theme paths touched by a group of
        k templates are parsed k times per firing day, so groups with
        k >= 2 produce stable MPJPs; the group's recurrence kind (daily /
        daily-window / weekly) and burst phase are shared, which is what
        gives the labels their learnable temporal structure.
        """
        cfg = self.config
        rng = self._rng
        tables = list(self._table_paths)
        template_id = 0
        for u in range(cfg.users):
            user = f"user{u:03d}"
            n_owned = int(rng.integers(1, 4))
            owned = list(
                rng.choice(tables, size=min(n_owned, len(tables)), replace=False)
            )
            n_templates = int(
                rng.integers(cfg.templates_per_user[0], cfg.templates_per_user[1] + 1)
            )
            remaining = n_templates
            while remaining > 0:
                group_size = min(int(rng.integers(1, 4)), remaining)
                remaining -= group_size
                table = owned[int(rng.integers(0, len(owned)))]
                pool = self._table_paths[table]
                theme_size = int(
                    rng.integers(
                        cfg.paths_per_query[0],
                        max(cfg.paths_per_query[0] + 1, cfg.paths_per_query[1] // 2 + 1),
                    )
                )
                theme = self._zipf_sample(pool, theme_size)
                # Group-level recurrence kind. The configured shares are
                # *query-volume* shares (what the paper reports); weekly
                # templates fire 1/7 as often as daily ones, so their
                # template-count weight is scaled up by 7 to compensate.
                w_daily = cfg.daily_share
                w_window = cfg.daily_window_share
                w_weekly = cfg.weekly_share * 7
                roll = rng.random() * (w_daily + w_window + w_weekly)
                if roll < w_daily:
                    kind, window = "daily", 1
                elif roll < w_daily + w_window:
                    kind, window = "daily_window", int(rng.integers(2, 8))
                else:
                    kind, window = "weekly", 7
                weekday = int(rng.integers(0, 7))
                start = int(rng.integers(0, max(cfg.days // 3, 1)))
                if rng.random() < cfg.churn_fraction:
                    end = int(rng.integers(start + cfg.days // 3, cfg.days + 1))
                else:
                    end = cfg.days
                burst = 0
                if kind == "daily" and rng.random() < cfg.burst_fraction:
                    # Short on/off periods: within a one-week window the
                    # active-day mix looks the same whether tomorrow is on
                    # or off, so order-free features cannot separate the
                    # two — only the sequence models can.
                    burst = int(rng.integers(2, 6))
                for _ in range(group_size):
                    extras = self._zipf_sample(
                        pool, int(rng.integers(0, 4))
                    )
                    paths = tuple(sorted(set(theme) | set(extras)))
                    self.templates.append(
                        _Template(
                            template_id=template_id,
                            user=user,
                            kind=kind,
                            paths=paths,
                            hour=int(rng.integers(1, 24)),
                            window_days=window,
                            weekday=weekday,
                            start_day=start,
                            end_day=end,
                            burst_period=burst,
                        )
                    )
                    template_id += 1

    def _template_fires(self, template: _Template, day: int) -> bool:
        if not template.start_day <= day < template.end_day:
            return False
        if template.burst_period:
            phase = (day - template.start_day) % (2 * template.burst_period)
            if phase >= template.burst_period:
                return False
            # Burst schedules are driven by upstream pipelines: within the
            # active phase they fire deterministically, which is what makes
            # the on/off pattern learnable from the sequence.
            return True
        if template.kind == "weekly":
            if day % 7 != template.weekday:
                return False
        return self._rng.random() < self.config.fire_probability

    def _update_seconds(self) -> int:
        """Time-of-day for table updates: midday-heavy, midnight-rare."""
        rng = self._rng
        if rng.random() < 0.85:
            hour = float(np.clip(rng.normal(12.5, 2.8), 0.0, 23.99))
        else:
            hour = float(rng.uniform(6.0, 22.0))
        return int(hour * 3600)

    def _generate(self) -> None:
        cfg = self.config
        rng = self._rng
        adhoc_total_weight = cfg.recurring_fraction
        for day in range(cfg.days):
            day_queries: list[TraceQuery] = []
            for template in self.templates:
                if self._template_fires(template, day):
                    seconds = template.hour * 3600 + int(rng.integers(0, 3600))
                    day_queries.append(
                        TraceQuery(
                            day=day,
                            seconds=seconds,
                            user=template.user,
                            template_id=template.template_id,
                            kind=template.kind,
                            paths=template.paths,
                            window_days=template.window_days,
                        )
                    )
            # Ad-hoc load proportional so recurring ends up near the
            # configured fraction of all queries.
            recurring_today = len(day_queries)
            expected_adhoc = recurring_today * (1 - adhoc_total_weight) / max(
                adhoc_total_weight, 1e-9
            )
            n_adhoc = rng.poisson(max(expected_adhoc, 0.0))
            tables = list(self._table_paths)
            for _ in range(int(n_adhoc)):
                table = tables[int(rng.integers(0, len(tables)))]
                pool = self._table_paths[table]
                n_paths = int(
                    rng.integers(cfg.paths_per_query[0], cfg.paths_per_query[1] + 1)
                )
                paths = self._zipf_sample(pool, n_paths, alpha=cfg.adhoc_zipf_alpha)
                day_queries.append(
                    TraceQuery(
                        day=day,
                        seconds=int(rng.integers(0, 86400)),
                        user=f"user{int(rng.integers(0, cfg.users)):03d}",
                        template_id=-1,
                        kind="adhoc",
                        paths=paths,
                    )
                )
            day_queries.sort(key=lambda q: q.seconds)
            self.queries.extend(day_queries)
            for table in self._table_paths:
                self.updates.append(
                    TableUpdate(
                        day=day,
                        seconds=self._update_seconds(),
                        database="wh",
                        table=table,
                    )
                )

    # ------------------------------------------------------------------
    # analysis accessors (drive Fig 2, Fig 4 and the collector)
    # ------------------------------------------------------------------
    def queries_on_day(self, day: int) -> list[TraceQuery]:
        return [q for q in self.queries if q.day == day]

    def daily_path_counts(self, day: int) -> Counter:
        """Counter of PathKey -> parse count for one day."""
        counts: Counter = Counter()
        for query in self.queries:
            if query.day == day:
                counts.update(query.paths)
        return counts

    def path_count_matrix(self) -> tuple[list[PathKey], np.ndarray]:
        """(paths, counts[day, path]) over the whole trace."""
        index = {key: i for i, key in enumerate(self.path_universe)}
        matrix = np.zeros((self.config.days, len(index)), dtype=np.int64)
        for query in self.queries:
            for key in query.paths:
                matrix[query.day, index[key]] += 1
        return list(self.path_universe), matrix

    def queries_per_path(self) -> Counter:
        """PathKey -> number of queries touching it (paper Fig 4)."""
        counts: Counter = Counter()
        for query in self.queries:
            counts.update(set(query.paths))
        return counts

    def recurring_fraction(self) -> float:
        if not self.queries:
            return 0.0
        return sum(1 for q in self.queries if q.recurring) / len(self.queries)

    def traffic_concentration(self, top_fraction: float = 0.27) -> float:
        """Share of parse traffic hitting the most popular paths.

        The paper reports 89% of traffic on the top 27% of paths.
        """
        counts: Counter = Counter()
        for query in self.queries:
            counts.update(query.paths)
        if not counts:
            return 0.0
        ordered = sorted(counts.values(), reverse=True)
        top = max(1, int(math.ceil(len(ordered) * top_fraction)))
        return sum(ordered[:top]) / sum(ordered)

    def update_hour_histogram(self) -> np.ndarray:
        """24-bin histogram of update times (paper Fig 2)."""
        hist = np.zeros(24, dtype=np.int64)
        for update in self.updates:
            hist[min(update.seconds // 3600, 23)] += 1
        return hist

    def mpjp_labels(self, day: int, threshold: int = 2) -> dict[PathKey, int]:
        """1 if the path was parsed >= threshold times on ``day`` else 0,
        for every path in the universe (the MPJP definition, §I)."""
        counts = self.daily_path_counts(day)
        return {
            key: int(counts.get(key, 0) >= threshold) for key in self.path_universe
        }
