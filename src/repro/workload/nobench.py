"""NoBench-style JSON document generator.

NoBench (Argo) is the micro-benchmark the paper uses in §II-C to measure
the share of query time spent parsing (Fig 3). Its documents mix:

* fixed scalar attributes (``str1``, ``str2``, ``num``, ``bool``);
* dynamically-typed attributes (``dyn1`` is int or string, ``dyn2`` is
  scalar or object);
* a nested object (``nested_obj``) and a nested string array
  (``nested_arr``);
* *sparse* attributes: each document carries a contiguous run of
  ``sparse_XXX`` keys out of a large cluster, so most keys are absent in
  most documents;
* ``thousandth`` — ``id % 1000``, used by selective predicates.

The generator is deterministic per ``(seed, index)`` so datasets are
reproducible and splittable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..jsonlib.jackson import dumps

__all__ = ["NoBenchConfig", "NoBenchGenerator"]

_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo "
    "lima mike november oscar papa quebec romeo sierra tango uniform victor "
    "whiskey xray yankee zulu"
).split()


@dataclass(frozen=True)
class NoBenchConfig:
    """Tunable document shape parameters."""

    sparse_cluster_size: int = 100
    sparse_keys_per_doc: int = 10
    nested_arr_length: int = 5
    seed: int = 7


class NoBenchGenerator:
    """Generate NoBench-style documents (dicts) and JSON strings."""

    def __init__(self, config: NoBenchConfig | None = None) -> None:
        self.config = config or NoBenchConfig()

    def document(self, index: int) -> dict:
        """The ``index``-th document (deterministic)."""
        cfg = self.config
        rng = random.Random((cfg.seed << 32) ^ index)
        words = rng.sample(_WORDS, 4)
        doc: dict[str, object] = {
            "str1": words[0],
            "str2": f"{words[1]} {words[2]}",
            "num": rng.randint(0, 1_000_000),
            "bool": rng.random() < 0.5,
            "thousandth": index % 1000,
        }
        # dyn1: int for even clusters, string for odd (dynamic typing).
        doc["dyn1"] = rng.randint(0, 999) if index % 2 == 0 else words[3]
        # dyn2: scalar or nested object.
        if index % 3 == 0:
            doc["dyn2"] = {"inner": rng.randint(0, 99), "label": words[0]}
        else:
            doc["dyn2"] = rng.randint(0, 99)
        doc["nested_obj"] = {
            "str": rng.choice(_WORDS),
            "num": rng.randint(0, 10_000),
        }
        doc["nested_arr"] = [
            rng.choice(_WORDS) for _ in range(cfg.nested_arr_length)
        ]
        # Sparse run: documents in the same cohort share a key window.
        start = (index * cfg.sparse_keys_per_doc) % cfg.sparse_cluster_size
        for offset in range(cfg.sparse_keys_per_doc):
            key = f"sparse_{(start + offset) % cfg.sparse_cluster_size:03d}"
            doc[key] = rng.choice(_WORDS)
        return doc

    def json(self, index: int) -> str:
        """The ``index``-th document serialised to a JSON string."""
        return dumps(self.document(index))

    def documents(self, count: int, start: int = 0):
        """Yield ``count`` consecutive documents starting at ``start``."""
        for index in range(start, start + count):
            yield self.document(index)

    def json_rows(self, count: int, start: int = 0):
        """Yield ``(id, json_string)`` rows for table loading."""
        for index in range(start, start + count):
            yield index, self.json(index)
