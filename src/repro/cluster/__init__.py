"""Multi-process cluster: consistent-hash router over shard processes.

This package turns the single-process :class:`~repro.server.MaxsonServer`
into a shared-nothing cluster without touching the server itself:

* :mod:`~repro.cluster.hashing` — the consistent-hash ring that places
  every ``(tenant, database, table)`` key on a shard, stable across
  restarts and minimally disturbed by resizes;
* :mod:`~repro.cluster.rpc` — length-prefixed JSON RPC with request-id
  multiplexing and typed error envelopes (``QueryShedError`` fields
  round-trip intact);
* :mod:`~repro.cluster.shard` — the shard child process: one full
  ``MaxsonServer`` per shard, so admission control, deadlines, breaker,
  watchdog and cache budgets are all per-shard by construction;
* :mod:`~repro.cluster.metacache` — the Presto-style coordinator
  metadata cache, invalidated per shard by version vectors piggybacked
  on every RPC response;
* :mod:`~repro.cluster.router` — spawn/supervise/route/aggregate:
  ``replay-serve --shards N`` talks to this;
* :mod:`~repro.cluster.replay` — the day-by-day cluster replay driver
  the differential suite and shard-scale bench use.
"""

from .hashing import HashRing, route_key
from .metacache import MetadataCache
from .replay import ClusterReplayReport, replay_cluster
from .router import ClusterRouter, ShardCrashError, aggregate_expositions
from .rpc import (
    RpcConnection,
    RpcError,
    ShardConnectionError,
    decode_error,
    encode_error,
)
from .shard import ShardSpec, build_shard_server, metadata_payload, shard_main

__all__ = [
    "HashRing",
    "route_key",
    "MetadataCache",
    "ClusterReplayReport",
    "replay_cluster",
    "ClusterRouter",
    "ShardCrashError",
    "aggregate_expositions",
    "RpcConnection",
    "RpcError",
    "ShardConnectionError",
    "decode_error",
    "encode_error",
    "ShardSpec",
    "build_shard_server",
    "metadata_payload",
    "shard_main",
]
