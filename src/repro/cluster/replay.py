"""Trace replay through the cluster router.

The cluster twin of :mod:`repro.server.replay`: the same day-by-day
schedule (all of a day's requests in flight together, midnight broadcast
to every shard before the next day starts), but submitted through a
:class:`~repro.cluster.router.ClusterRouter`, so each request is
consistent-hash routed to its shard and executes under that shard's own
admission/deadline/breaker budgets.

The report mirrors :class:`~repro.server.replay.ReplayReport` field for
field — the differential suite compares the two shapes directly — and
adds the cluster-only tallies: per-shard completion counts, shard-crash
failures, and the coordinator metadata-cache hit rate over the replayed
(post-warmup) window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.errors import DeadlineExceededError, QueryCancelledError
from ..server.admission import AdmissionError
from ..server.replay import ReplayRequest, build_replay_workload
from .router import ClusterRouter, ShardCrashError

__all__ = ["ClusterReplayReport", "replay_cluster", "build_replay_workload"]


@dataclass
class ClusterReplayReport:
    """Outcome of one cluster replay run."""

    requests: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    cancelled: int = 0
    crash_failed: int = 0
    """Requests lost to a shard crash window (respawn covers the rest)."""
    days: int = 0
    wall_seconds: float = 0.0
    verified: int = 0
    mismatched: int = 0
    shards: int = 0
    per_shard_completed: dict[int, int] = field(default_factory=dict)
    metadata_cache: dict = field(default_factory=dict)
    """Coordinator cache snapshot over the replay window (stats are reset
    at replay start, so ``hit_rate`` here is the post-warmup figure the
    bench gate checks)."""
    status: dict | None = None


def replay_cluster(
    router: ClusterRouter,
    requests: list[ReplayRequest],
    stats_events: list[tuple[int, tuple]] | None = None,
    deadline_ms: float | None = None,
    baseline=None,
    reset_cache_stats: bool = True,
) -> ClusterReplayReport:
    """Replay ``requests`` day by day through the router.

    ``baseline`` (optional) is a callable ``sql -> sorted row strings or
    None`` — typically the single-server twin's fault-free engine — used
    to verify every completed request's rows bit-for-bit; the
    differential suite passes it to prove the cluster answers exactly
    what one server would.

    ``reset_cache_stats`` zeroes the metadata-cache hit/miss counters
    before the first request so the reported ``hit_rate`` covers only
    this replay (warm entries from router startup are kept — that *is*
    the warmup).
    """
    report = ClusterReplayReport(
        requests=len(requests), shards=len(router.ring)
    )
    by_day: dict[int, list[ReplayRequest]] = {}
    for request in requests:
        by_day.setdefault(request.day, []).append(request)
    events_by_day: dict[int, list[tuple]] = {}
    for day, paths in stats_events or ():
        events_by_day.setdefault(day, []).append(paths)
    if reset_cache_stats:
        router.metacache.reset_stats()
    if not by_day:
        report.metadata_cache = router.metacache.snapshot()
        report.status = router.status()
        return report
    started = time.perf_counter()
    last_day = max(by_day)
    # The virtual clock is shard-local; every shard was built from the
    # same spec, so they share one seconds-per-day constant.
    spd = float(dict(router.spec.server).get("seconds_per_day", 86400.0))
    for day in range(min(by_day), last_day + 1):
        day_requests = by_day.get(day, [])
        futures = [
            (
                r,
                router.submit(
                    r.sql, tenant=r.tenant, day=r.day, deadline_ms=deadline_ms
                ),
            )
            for r in day_requests
        ]
        for paths in events_by_day.get(day, ()):
            router.ingest(day, paths)
        for request, future in futures:
            try:
                response = future.result()
                report.completed += 1
            except ShardCrashError:
                report.crash_failed += 1
                continue
            except AdmissionError:
                report.shed += 1
                continue
            except DeadlineExceededError:
                report.deadline_exceeded += 1
                continue
            except QueryCancelledError:
                report.cancelled += 1
                continue
            except Exception:
                report.failed += 1
                continue
            shard_id = response["shard"]
            report.per_shard_completed[shard_id] = (
                report.per_shard_completed.get(shard_id, 0) + 1
            )
            if baseline is not None:
                expected = baseline(request.sql)
                if expected is None:
                    continue
                if sorted(map(str, response["rows"])) == expected:
                    report.verified += 1
                else:
                    report.mismatched += 1
        # Midnight broadcast: every shard crosses into day+1 (each runs
        # its own predict/score/build/swap) while this day's stragglers
        # may still be draining — same interleaving as single-process.
        if day < last_day:
            router.advance_to((day + 1) * spd)
    report.days = len(by_day)
    report.wall_seconds = time.perf_counter() - started
    report.metadata_cache = router.metacache.snapshot()
    report.status = router.status()
    return report
