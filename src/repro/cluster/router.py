"""The cluster front end: consistent-hash routing over shard processes.

:class:`ClusterRouter` is what ``replay-serve --shards N`` (and any
embedding client) talks to instead of a single
:class:`~repro.server.MaxsonServer`:

* it **spawns and supervises** N shard processes (each a full
  ``MaxsonServer`` — see :mod:`repro.cluster.shard`), restarting a
  crashed shard in place: the ring is a pure function of the shard-id
  set, so a respawn moves zero keys and only the crash window's
  in-flight queries on that shard fail (:class:`ShardCrashError`);
* it **routes** every query by consistent hash of ``(tenant, database,
  table)`` (:mod:`repro.cluster.hashing`) — one RPC per query, no
  metadata round trips on the hot path thanks to the coordinator
  **metadata cache** (:mod:`repro.cluster.metacache`) fed by the
  version vectors shards piggyback on every response;
* it forwards **deadlines** down and typed **shed errors** back
  *unchanged* — a ``QueryShedError``'s ``retry_after_seconds`` and
  reason reach the client exactly as the shard raised them, so backoff
  behaviour is identical to single-process mode;
* it **aggregates** ``status()`` and the Prometheus exposition across
  shards (every sample gains a ``shard`` label; counters sum, latency
  percentiles report the worst shard) and sums the ``system.queries``
  audit across shards;
* at startup it runs :func:`~repro.engine.procpool.reap_orphan_segments`
  so shared-memory segments abandoned by dead shard pids of a previous
  run are unlinked before new shards spawn.
"""

from __future__ import annotations

import re
import socket
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from multiprocessing import get_context

from ..engine.procpool import reap_orphan_segments
from ..server.admission import AdmissionError
from ..server.status import percentile
from .hashing import HashRing, route_key
from .metacache import MetadataCache
from .rpc import RpcConnection, ShardConnectionError, recv_frame
from .shard import ShardSpec, shard_main

__all__ = ["ShardCrashError", "ClusterRouter", "aggregate_expositions"]

_FROM_TABLE = re.compile(
    r"\bFROM\s+([A-Za-z_][A-Za-z0-9_]*)\.([A-Za-z_][A-Za-z0-9_]*)",
    re.IGNORECASE,
)

#: Ops the supervisor retries against a *respawned* shard are read-only;
#: queries are never replayed automatically (the client owns retry).
_HELLO_TIMEOUT = 120.0


class ShardCrashError(RuntimeError):
    """The routed shard died while this request was in flight. The shard
    is respawned (when supervision is on); only this crash window's
    requests fail."""

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class _Shard:
    """Supervisor-side handle: process + connection + identity."""

    def __init__(self, shard_id: int, process, conn: RpcConnection, pid: int):
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.pid = pid
        self.generation = 0  # respawn count, not cache generation


class ClusterRouter:
    """Router process object: ring + supervisor + metadata cache."""

    def __init__(
        self,
        shards: int,
        spec: ShardSpec | None = None,
        ring_replicas: int = 64,
        respawn: bool = True,
        default_tenant: str = "default",
        client_pool_workers: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.spec = spec or ShardSpec()
        self.respawn = respawn
        self.default_tenant = default_tenant
        #: SHM segments of dead pids (a previous router's shards) reaped
        #: before any new shard spawns — same recovery contract as the
        #: single server's startup.
        self.reaped_shm_segments = reap_orphan_segments()
        self.ring = HashRing(range(shards), replicas=ring_replicas)
        self.metacache = MetadataCache()
        self._ctx = get_context("spawn")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(max(8, shards))
        self._host, self._port = self._listener.getsockname()
        self._lock = threading.Lock()
        self._shards: dict[int, _Shard] = {}
        self._closed = False
        self._started = time.perf_counter()
        # router-level accounting (guarded by self._lock)
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._crash_failed = 0
        self._respawns = 0
        self._per_shard_completed: dict[int, int] = {}
        self._latencies: list[float] = []
        for shard_id in range(shards):
            self._spawn(shard_id)
        self._pool = ThreadPoolExecutor(
            max_workers=client_pool_workers
            or max(4, shards * int(dict(self.spec.server).get("max_workers", 8))),
            thread_name_prefix="router",
        )

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _spawn(self, shard_id: int) -> _Shard:
        spec = replace(self.spec, shard_id=shard_id)
        process = self._ctx.Process(
            target=shard_main,
            args=(spec.to_dict(), self._host, self._port),
            daemon=True,
            name=f"maxson-shard-{shard_id}",
        )
        process.start()
        conn, pid = self._accept_hello(shard_id)
        shard = _Shard(shard_id, process, conn, pid)
        with self._lock:
            previous = self._shards.get(shard_id)
            if previous is not None:
                shard.generation = previous.generation + 1
            self._shards[shard_id] = shard
        return shard

    def _accept_hello(self, shard_id: int) -> tuple[RpcConnection, int]:
        """Accept connections until the expected shard dials in (shards
        booting concurrently may arrive out of order — each is matched
        to its supervisor slot by the id in its hello frame)."""
        deadline = time.monotonic() + _HELLO_TIMEOUT
        while True:
            self._listener.settimeout(max(0.1, deadline - time.monotonic()))
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                raise TimeoutError(
                    f"shard {shard_id} did not dial back within "
                    f"{_HELLO_TIMEOUT:.0f}s"
                ) from None
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            hello = recv_frame(sock)
            connected_id = int(hello.get("hello", -1))
            pid = int(hello.get("pid", 0))
            conn = RpcConnection(sock)
            observer = self.metacache
            conn.version_observer = (
                lambda v, s=connected_id: observer.observe_version(s, v)
            )
            if "v" in hello:
                observer.observe_version(connected_id, hello["v"])
            if connected_id == shard_id:
                return conn, pid
            # A different shard finished booting first: park it.
            with self._lock:
                self._shards[connected_id] = _Shard(
                    connected_id, None, conn, pid
                )

    def _shard_for(self, shard_id: int) -> _Shard:
        with self._lock:
            shard = self._shards.get(shard_id)
        if shard is None or shard.conn.closed:
            shard = self._revive(shard_id)
        return shard

    def _revive(self, shard_id: int) -> _Shard:
        """Serialize crash recovery: first caller respawns, the rest
        wait on the spawn happening under the router lock's shadow."""
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is not None and not shard.conn.closed:
                return shard
            if not self.respawn or self._closed:
                raise ShardCrashError(
                    shard_id, f"shard {shard_id} is down (respawn disabled)"
                )
        self._reap_dead(shard_id)
        replacement = self._spawn(shard_id)
        with self._lock:
            self._respawns += 1
        return replacement

    def _reap_dead(self, shard_id: int) -> None:
        with self._lock:
            shard = self._shards.get(shard_id)
        if shard is None:
            return
        shard.conn.close()
        if shard.process is not None:
            shard.process.join(timeout=5.0)
        # The dead pid's process-pool segments are orphans now.
        reap_orphan_segments()
        self.metacache.forget_shard(shard_id)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @staticmethod
    def table_of(sql: str) -> tuple[str, str]:
        match = _FROM_TABLE.search(sql)
        if match is None:
            return ("", "")
        return (match.group(1), match.group(2))

    def route(self, tenant: str, database: str, table: str) -> int:
        return self.ring.node_for(route_key(tenant, database, table))

    def shard_of(self, sql: str, tenant: str | None = None) -> int:
        database, table = self.table_of(sql)
        return self.route(tenant or self.default_tenant, database, table)

    # ------------------------------------------------------------------
    # metadata (coordinator cache)
    # ------------------------------------------------------------------
    def _metadata(self, shard_id: int, kind: str, database: str, table: str):
        key = f"{database}.{table}"

        def loader():
            shard = self._shard_for(shard_id)
            response = shard.conn.call(
                "metadata", kind=kind, database=database, table=table
            )
            return response["payload"], response["v"]

        return self.metacache.lookup(shard_id, kind, key, loader)

    def table_metadata(
        self,
        database: str,
        table: str,
        tenant: str | None = None,
        kinds: tuple[str, ...] = ("schema", "footers", "stripes", "registry"),
    ) -> dict:
        """Plan-relevant metadata for one table, served from the
        coordinator cache (shard RPC only on miss/invalidation)."""
        shard_id = self.route(tenant or self.default_tenant, database, table)
        return {
            kind: self._metadata(shard_id, kind, database, table)
            for kind in kinds
        }

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        tenant: str | None = None,
        day: int | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """Route and execute one query; returns ``{"rows": ..,
        "metrics": .., "shard": id}``. Admission/engine errors re-raise
        with their single-process types and fields; a shard crash raises
        :class:`ShardCrashError` after scheduling the respawn."""
        tenant = tenant or self.default_tenant
        database, table = self.table_of(sql)
        shard_id = self.route(tenant, database, table)
        if database and database != "system":
            # Plan-relevant lookup from the coordinator cache: a warm
            # entry answers without touching the shard; version-vector
            # piggybacks keep it honest across DDL/append/swap.
            self._metadata(shard_id, "schema", database, table)
        shard = self._shard_for(shard_id)
        started = time.perf_counter()
        try:
            response = shard.conn.call(
                "execute",
                sql=sql,
                tenant=tenant,
                day=day,
                deadline_ms=deadline_ms,
            )
        except ShardConnectionError as exc:
            with self._lock:
                self._crash_failed += 1
            if self.respawn and not self._closed:
                # Respawn in the background so the failing caller does
                # not pay the rebuild; the next request to this shard
                # finds it alive (or waits on the revive lock).
                threading.Thread(
                    target=self._safe_revive, args=(shard_id,), daemon=True
                ).start()
            raise ShardCrashError(
                shard_id, f"shard {shard_id} died mid-query: {exc}"
            ) from exc
        except AdmissionError:
            with self._lock:
                self._shed += 1
            raise
        except Exception:
            with self._lock:
                self._failed += 1
            raise
        elapsed = time.perf_counter() - started
        with self._lock:
            self._completed += 1
            self._per_shard_completed[shard_id] = (
                self._per_shard_completed.get(shard_id, 0) + 1
            )
            self._latencies.append(elapsed)
            if len(self._latencies) > 65536:
                del self._latencies[:32768]
        response["shard"] = shard_id
        return response

    def _safe_revive(self, shard_id: int) -> None:
        try:
            self._revive(shard_id)
        except Exception:
            pass

    def submit(
        self,
        sql: str,
        tenant: str | None = None,
        day: int | None = None,
        deadline_ms: float | None = None,
    ) -> Future:
        """Async execute on the router's client pool (replay fan-out)."""
        if self._closed:
            raise RuntimeError("router is shut down")
        return self._pool.submit(self.execute, sql, tenant, day, deadline_ms)

    def ingest(self, day: int, paths) -> None:
        """Route a bare stats event to the shard owning its table (the
        shard's predictor sees exactly the traffic routed to it)."""
        paths = [tuple(p) for p in paths]
        if paths:
            database, table = paths[0][0], paths[0][1]
        else:
            database, table = "", ""
        shard_id = self.route(self.default_tenant, database, table)
        shard = self._shard_for(shard_id)
        shard.conn.call("ingest", day=day, paths=[list(p) for p in paths])

    # ------------------------------------------------------------------
    # maintenance (broadcast)
    # ------------------------------------------------------------------
    def advance_to(self, seconds: float) -> dict[int, list]:
        """Advance every shard's virtual clock (midnight cycles run
        shard-locally; each shard swaps its own generation)."""
        return {
            shard_id: self._shard_for(shard_id)
            .conn.call("advance_to", seconds=seconds)
            .get("events", [])
            for shard_id in self.ring.nodes
        }

    def run_midnight(self, day: int | None = None) -> dict[int, dict]:
        return {
            shard_id: {
                k: v
                for k, v in self._shard_for(shard_id)
                .conn.call("midnight", day=day)
                .items()
                if k not in ("ok", "id", "v")
            }
            for shard_id in self.ring.nodes
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def shard_status(self) -> dict[int, dict]:
        return {
            shard_id: self._shard_for(shard_id).conn.call("status")["status"]
            for shard_id in self.ring.nodes
        }

    def status(self) -> dict:
        """Aggregated cluster status: summed counters, worst-shard
        latency percentiles, per-shard snapshots, router accounting and
        the metadata-cache hit statistics."""
        per_shard = self.shard_status()
        with self._lock:
            latencies = sorted(self._latencies)
            router = {
                "uptime_seconds": time.perf_counter() - self._started,
                "completed": self._completed,
                "failed": self._failed,
                "shed": self._shed,
                "crash_failed": self._crash_failed,
                "respawns": self._respawns,
                "per_shard_completed": dict(self._per_shard_completed),
                "latency_p50_seconds": percentile(latencies, 0.50),
                "latency_p95_seconds": percentile(latencies, 0.95),
                "latency_p99_seconds": percentile(latencies, 0.99),
            }
        sum_keys = (
            "queries_completed",
            "queries_failed",
            "queries_shed",
            "queries_deadline_exceeded",
            "queries_cancelled",
            "stats_events_ingested",
            "cache_hits",
            "cache_misses",
            "fallback_queries",
            "query_retries",
            "midnight_cycles",
        )
        totals = {key: sum(int(s.get(key, 0)) for s in per_shard.values())
                  for key in sum_keys}
        shed_breakdown: dict[str, int] = {}
        for snapshot in per_shard.values():
            for reason, count in dict(
                snapshot.get("shed_breakdown", {})
            ).items():
                shed_breakdown[reason] = shed_breakdown.get(reason, 0) + count
        totals["shed_breakdown"] = shed_breakdown
        totals["latency_p95_seconds"] = max(
            (float(s.get("latency_p95_seconds", 0.0)) for s in per_shard.values()),
            default=0.0,
        )
        totals["generation_by_shard"] = {
            shard_id: int(s.get("generation", 0))
            for shard_id, s in per_shard.items()
        }
        return {
            "shards": len(per_shard),
            "cluster": totals,
            "router": router,
            "metadata_cache": self.metacache.snapshot(),
            "per_shard": per_shard,
            "reaped_shm_segments": self.reaped_shm_segments,
        }

    def metrics_text(self) -> str:
        """One Prometheus exposition for the whole cluster: every shard
        sample gains a ``shard`` label; router-local series are appended
        under ``maxson_router_*`` / ``maxson_metadata_cache_*``."""
        by_shard = {
            shard_id: self._shard_for(shard_id).conn.call("metrics_text")[
                "text"
            ]
            for shard_id in self.ring.nodes
        }
        meta = self.metacache.snapshot()
        with self._lock:
            router_lines = [
                "# HELP maxson_router_requests_total Requests routed by outcome",
                "# TYPE maxson_router_requests_total counter",
                f'maxson_router_requests_total{{outcome="completed"}} {float(self._completed)}',
                f'maxson_router_requests_total{{outcome="failed"}} {float(self._failed)}',
                f'maxson_router_requests_total{{outcome="shed"}} {float(self._shed)}',
                f'maxson_router_requests_total{{outcome="crash_failed"}} {float(self._crash_failed)}',
                "# HELP maxson_router_shard_respawns_total Crashed shards respawned by the supervisor",
                "# TYPE maxson_router_shard_respawns_total counter",
                f"maxson_router_shard_respawns_total {float(self._respawns)}",
            ]
        router_lines += [
            "# HELP maxson_metadata_cache_hits_total Coordinator metadata-cache hits",
            "# TYPE maxson_metadata_cache_hits_total counter",
            f"maxson_metadata_cache_hits_total {float(meta['hits'])}",
            "# HELP maxson_metadata_cache_misses_total Coordinator metadata-cache misses",
            "# TYPE maxson_metadata_cache_misses_total counter",
            f"maxson_metadata_cache_misses_total {float(meta['misses'])}",
            "# HELP maxson_metadata_cache_invalidations_total Shard version-vector invalidations",
            "# TYPE maxson_metadata_cache_invalidations_total counter",
            f"maxson_metadata_cache_invalidations_total {float(meta['invalidations'])}",
            "# HELP maxson_metadata_cache_entries Entries held by the coordinator metadata cache",
            "# TYPE maxson_metadata_cache_entries gauge",
            f"maxson_metadata_cache_entries {float(meta['entries'])}",
        ]
        return aggregate_expositions(by_shard, extra_lines=router_lines)

    def audit_system_queries(self) -> dict:
        """The shard-aware ``system.queries`` reconciliation: per-shard
        status breakdowns plus their cluster-wide sum (the figure the
        replay audit compares against accounted requests)."""
        per_shard: dict[int, dict[str, int]] = {}
        for shard_id in self.ring.nodes:
            shard = self._shard_for(shard_id)
            rows = shard.conn.call(
                "sql",
                sql=(
                    "SELECT status, count(*) AS n FROM system.queries "
                    "GROUP BY status"
                ),
            )["rows"]
            per_shard[shard_id] = {
                str(row["status"]): int(row["n"]) for row in rows
            }
        totals: dict[str, int] = {}
        for breakdown in per_shard.values():
            for status, count in breakdown.items():
                totals[status] = totals.get(status, 0) + count
        return {
            "per_shard": per_shard,
            "totals": totals,
            "total_rows": sum(totals.values()),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=False)
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            try:
                shard.conn.call("shutdown", timeout=10.0)
            except (ShardConnectionError, Exception):
                pass
            shard.conn.close()
        for shard in shards:
            if shard.process is not None:
                shard.process.join(timeout=10.0)
                if shard.process.is_alive():
                    shard.process.terminate()
        self._listener.close()
        # Anything a hard-killed shard left in /dev/shm is ours to reap.
        reap_orphan_segments()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
# exposition aggregation
# ---------------------------------------------------------------------------
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)


def aggregate_expositions(
    by_shard: dict[int, str], extra_lines: list[str] | None = None
) -> str:
    """Merge per-shard Prometheus expositions into one.

    Every sample gains a ``shard="<id>"`` label (prepended, so existing
    labels survive untouched); ``# HELP`` / ``# TYPE`` headers are
    emitted once per metric family, in the order the first shard's
    exposition declares them. ``extra_lines`` (router-local series) are
    appended verbatim.
    """
    families: list[str] = []  # family order of first appearance
    headers: dict[str, list[str]] = {}  # family -> HELP/TYPE lines
    samples: dict[str, list[str]] = {}  # family -> labelled samples
    for shard_id in sorted(by_shard):
        family = ""
        for line in by_shard[shard_id].splitlines():
            if not line.strip():
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                if name != family:
                    family = name
                    if family not in headers:
                        families.append(family)
                        headers[family] = []
                if line not in headers[family]:
                    headers[family].append(line)
                continue
            if line.startswith("#"):
                continue
            match = _SAMPLE_LINE.match(line)
            if match is None:
                continue
            name = match.group("name")
            labels = match.group("labels")
            shard_label = f'shard="{shard_id}"'
            body = f"{shard_label},{labels}" if labels else shard_label
            base = family if name.startswith(family) else name
            if base not in headers:
                families.append(base)
                headers[base] = []
            samples.setdefault(base, []).append(
                f"{name}{{{body}}} {match.group('value')}"
            )
    lines: list[str] = []
    for family in families:
        lines.extend(headers[family])
        lines.extend(samples.get(family, []))
    if extra_lines:
        lines.extend(extra_lines)
    return "\n".join(lines) + "\n" if lines else ""
