"""Length-prefixed JSON RPC between the router and its shard processes.

The wire format is deliberately tiny: every message is one JSON object
preceded by a 4-byte little-endian length. Requests are ``{"id": n,
"op": ..., **kwargs}``; responses echo the ``id`` (queries execute on
the shard's thread pool, so responses return out of order and one
socket multiplexes a whole day's concurrency) and are either
``{"id": n, "ok": true, "v": <version-vector>, ...payload}`` or an
**error envelope**::

    {"id": n, "ok": false, "v": ..., "error": {"type": "QueryShedError",
     "message": "...", "retry_after_seconds": 0.25}}

``v`` is the shard's metadata version vector (see
:mod:`repro.cluster.metacache`), piggybacked on *every* response so the
router's metadata cache learns about DDL/append/generation-swap without
a dedicated poll.

Error envelopes round-trip the server's admission and engine exception
types **including their fields** — a ``QueryShedError`` raised inside a
shard reaches the router's client with the same ``retry_after_seconds``
and shed-reason message it would have carried in single-process mode,
so client backoff behaviour is identical either way (regression-tested
in ``tests/cluster/test_rpc.py``).
"""

from __future__ import annotations

import json
import socket
import struct
import threading

from ..engine.errors import (
    DeadlineExceededError,
    EngineError,
    ExecutionError,
    QueryCancelledError,
)
from ..server.admission import (
    AdmissionError,
    AdmissionTimeout,
    QueryShedError,
    QueueFullError,
)

__all__ = [
    "RpcError",
    "ShardConnectionError",
    "send_frame",
    "recv_frame",
    "encode_error",
    "decode_error",
    "RpcConnection",
]

_LENGTH = struct.Struct("<I")

#: Frames above this are refused — nothing the cluster ships (rows of a
#: simulator-scale result set, a status snapshot) comes near it, and the
#: cap turns a corrupt length prefix into a clean error instead of an
#: unbounded allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class RpcError(RuntimeError):
    """A shard returned an error the router could not map to a typed
    exception (the generic envelope)."""


class ShardConnectionError(ConnectionError):
    """The shard's socket died mid-conversation (crash, kill, close)."""


#: Exception classes that cross the RPC boundary by name. Anything else
#: degrades to :class:`RpcError` with the original type in the message.
_WIRE_TYPES: dict[str, type[Exception]] = {
    "QueryShedError": QueryShedError,
    "QueueFullError": QueueFullError,
    "AdmissionTimeout": AdmissionTimeout,
    "AdmissionError": AdmissionError,
    "DeadlineExceededError": DeadlineExceededError,
    "QueryCancelledError": QueryCancelledError,
    "ExecutionError": ExecutionError,
    "EngineError": EngineError,
}


def send_frame(sock: socket.socket, obj: dict) -> None:
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    try:
        sock.sendall(_LENGTH.pack(len(payload)) + payload)
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ShardConnectionError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < nbytes:
        try:
            chunk = sock.recv(nbytes - len(chunks))
        except (ConnectionResetError, OSError) as exc:
            raise ShardConnectionError(f"recv failed: {exc}") from exc
        if not chunk:
            raise ShardConnectionError("peer closed the connection")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> dict:
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise ShardConnectionError(f"frame of {length} bytes exceeds cap")
    return json.loads(_recv_exact(sock, length).decode("utf-8"))


# ---------------------------------------------------------------------------
# error envelopes
# ---------------------------------------------------------------------------
def encode_error(exc: BaseException) -> dict:
    """The wire form of an exception, fields included."""
    payload: dict[str, object] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after_seconds", None)
    if retry_after is not None:
        payload["retry_after_seconds"] = retry_after
    return payload


def decode_error(payload: dict) -> Exception:
    """Rebuild the typed exception a shard shipped (fields restored)."""
    name = str(payload.get("type", "RpcError"))
    message = str(payload.get("message", ""))
    cls = _WIRE_TYPES.get(name)
    if cls is None:
        return RpcError(f"{name}: {message}")
    if cls is QueryShedError:
        return QueryShedError(
            message,
            retry_after_seconds=float(payload.get("retry_after_seconds", 0.0)),
        )
    return cls(message)


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------
class RpcConnection:
    """One router→shard connection, multiplexing concurrent requests.

    Requests carry a monotonically increasing ``id``; the shard answers
    each when *its* work completes (queries run on the shard's own
    thread pool), so responses come back out of order and one socket
    carries a whole day's concurrent fan-in to the shard. A reader
    thread parks each response with its waiting caller; a writer lock
    keeps frames atomic on the send side.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, dict] = {}  # id -> {event, response}
        self._ids = 0
        self.closed = False
        #: Called with the shard's version vector after every response.
        self.version_observer = None
        self._reader = threading.Thread(
            target=self._read_loop, name="shard-rpc-reader", daemon=True
        )
        self._reader.start()

    # -- reader ---------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            while True:
                response = recv_frame(self._sock)
                waiter = None
                with self._pending_lock:
                    waiter = self._pending.pop(response.get("id"), None)
                if waiter is not None:
                    waiter["response"] = response
                    waiter["event"].set()
        except (ShardConnectionError, json.JSONDecodeError, ValueError):
            self._fail_pending()

    def _fail_pending(self) -> None:
        self.closed = True
        with self._pending_lock:
            waiters = list(self._pending.values())
            self._pending.clear()
        for waiter in waiters:
            waiter["event"].set()

    # -- caller ---------------------------------------------------------
    def call(self, op: str, timeout: float | None = None, **kwargs) -> dict:
        """Send one request; return the payload or raise the shipped
        (typed) exception. A dead socket (shard crash) raises
        :class:`ShardConnectionError` for every in-flight caller."""
        if self.closed:
            raise ShardConnectionError("connection already closed")
        waiter = {"event": threading.Event(), "response": None}
        with self._pending_lock:
            self._ids += 1
            request_id = self._ids
            self._pending[request_id] = waiter
        request = {"id": request_id, "op": op}
        request.update(kwargs)
        try:
            with self._write_lock:
                send_frame(self._sock, request)
        except ShardConnectionError:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            self._fail_pending()
            raise
        if not waiter["event"].wait(timeout):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ShardConnectionError(f"rpc {op!r} timed out")
        response = waiter["response"]
        if response is None:
            raise ShardConnectionError("shard connection lost mid-call")
        if self.version_observer is not None and "v" in response:
            self.version_observer(response["v"])
        if response.get("ok"):
            return response
        raise decode_error(response.get("error", {}))

    def close(self) -> None:
        self.closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
