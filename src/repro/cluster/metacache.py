"""Router-side metadata cache with per-shard version-vector invalidation.

Modeled on "Metadata Caching in Presto" (PAPERS.md): the coordinator
keeps the plan-relevant metadata of every shard — table **schemas**,
**MORC footers** (stripe directories + row counts), **stripe indexes**
and the **cache-registry version** — in its own memory, so routing a
query and answering metadata lookups never pays a shard round trip on
the hot path.

Invalidation is by **version vector**, not TTL. Every shard maintains a
small vector — ``{"catalog": N, "generation": M}`` — where the catalog
component bumps on any DDL or data append and the generation component
on every cache-generation swap. Shards piggyback their current vector
on *every* RPC response; the moment the router observes a shard's
vector move, that shard's entries (and only that shard's) are dropped.
A quiet shard therefore serves metadata from the coordinator forever,
while DDL/append/swap invalidates exactly the shard it happened on —
the per-shard analogue of Presto's catalog-versioned cache, and the
property the replay hit-rate gate (≥ 0.9 after warmup) measures.
"""

from __future__ import annotations

import threading

__all__ = ["MetadataCache", "version_equal", "version_advances"]


def version_equal(a, b) -> bool:
    """Vector equality (dicts compare by component)."""
    return a == b


def version_advances(known, candidate) -> bool:
    """True when ``candidate`` moves past ``known``.

    Components (catalog version, cache generation) are monotonic
    counters, so a candidate that is equal — or componentwise behind —
    is an old response arriving late, not news; observing it must not
    roll the shard's vector backwards (a respawned shard starts over,
    but the crash path forgets the shard first, so its fresh vector
    lands on a blank slate)."""
    if candidate == known:
        return False
    return any(
        candidate.get(key, 0) > known.get(key, 0) for key in candidate
    )


class MetadataCache:
    """Versioned ``(shard, kind, key) -> payload`` cache.

    ``kind`` names the metadata family (``schema`` / ``footers`` /
    ``stripes`` / ``registry``); ``key`` is the qualified table name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (shard, kind, key) -> {"version": vec, "value": payload}
        self._entries: dict[tuple[int, str, str], dict] = {}
        #: Last vector observed per shard (from RPC piggybacks).
        self._versions: dict[int, dict] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.hits_by_kind: dict[str, int] = {}
        self.misses_by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------
    def observe_version(self, shard: int, version: dict) -> bool:
        """Record a shard's current vector; drop its entries when it
        moved. Returns True when an invalidation happened."""
        with self._lock:
            known = self._versions.get(shard)
            if known is not None and not version_advances(known, version):
                return False
            self._versions[shard] = dict(version)
            if known is None:
                return False
            stale = [k for k in self._entries if k[0] == shard]
            for key in stale:
                del self._entries[key]
            if stale:
                self.invalidations += 1
            return bool(stale)

    def lookup(self, shard: int, kind: str, key: str, loader):
        """Serve ``(shard, kind, key)`` from cache, or load it.

        ``loader()`` must return ``(payload, version_vector)`` — in the
        cluster it is one shard RPC. A hit requires the entry's vector
        to equal the shard's last-observed vector, so an entry cached
        before an append/DDL/swap can never be served after it.
        """
        with self._lock:
            entry = self._entries.get((shard, kind, key))
            known = self._versions.get(shard)
            if (
                entry is not None
                and known is not None
                and version_equal(entry["version"], known)
            ):
                self.hits += 1
                self.hits_by_kind[kind] = self.hits_by_kind.get(kind, 0) + 1
                return entry["value"]
            self.misses += 1
            self.misses_by_kind[kind] = self.misses_by_kind.get(kind, 0) + 1
        value, version = loader()
        self.observe_version(shard, version)
        with self._lock:
            # Store against the vector the payload was read at; if the
            # shard moved on *while* we loaded, the next lookup misses
            # again rather than serving possibly-stale metadata.
            self._entries[(shard, kind, key)] = {
                "version": dict(version),
                "value": value,
            }
        return value

    def forget_shard(self, shard: int) -> None:
        """Drop a shard's entries and version (crash/respawn path)."""
        with self._lock:
            for key in [k for k in self._entries if k[0] == shard]:
                del self._entries[key]
            self._versions.pop(shard, None)

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the hit/miss counters (bench warmup boundary); cached
        payloads and versions are kept."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0
            self.hits_by_kind = {}
            self.misses_by_kind = {}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "invalidations": self.invalidations,
                "hits_by_kind": dict(self.hits_by_kind),
                "misses_by_kind": dict(self.misses_by_kind),
                "shards_tracked": len(self._versions),
            }
