"""The shard process: one full MaxsonServer over its slice of traffic.

A shard is spawned by the :class:`~repro.cluster.router.ClusterRouter`
with a JSON-safe :class:`ShardSpec`, rebuilds the (deterministic)
warehouse from it — every shard materialises the same Table II tables,
so any shard can answer any table bit-identically; *which* shard a
``(tenant, table)`` pair actually hits is the ring's decision — and
then serves length-prefixed RPC requests over the socket it dialled
back to the router.

Everything that was process-global in single-server mode is now
**shard-local by construction**: the admission controller, deadline
shedding, breaker state, memory watchdog, maintenance scheduler and
every cache budget (result/plan/document tiers plus the generation's
JSONPath tables) live inside this process's ``MaxsonServer``, exactly
as PR 1–8 built them. The router never reaches into any of it; it only
speaks the small op set below.

Ops: ``execute`` (runs on the shard's own thread pool, responses return
out of order), ``ingest``, ``advance_to`` / ``midnight`` / ``refresh``
(maintenance), ``status`` / ``metrics_text`` / ``sql`` (observability
and the shard-aware ``system.queries`` audit), ``metadata`` (the
coordinator cache's loader), ``ping``, ``shutdown``, and ``crash`` —
``os._exit`` mid-flight, the chaos hook the supervision tests use.

Every response carries the shard's metadata **version vector**
``{"catalog": ..., "generation": ...}`` so the router's
:class:`~repro.cluster.metacache.MetadataCache` invalidates on
DDL/append/generation-swap without polling.
"""

from __future__ import annotations

import os
import socket
import threading
from dataclasses import asdict, dataclass, field

from ..workload.trace import PathKey
from .rpc import encode_error, recv_frame, send_frame

__all__ = [
    "ShardSpec",
    "build_shard_server",
    "shard_main",
    "metadata_payload",
    "spec_queries",
]


@dataclass
class ShardSpec:
    """Everything a shard process needs to rebuild its server.

    JSON-safe by design: it crosses the spawn boundary as a plain dict.
    The warehouse fields are deterministic generators (not data), so a
    respawned shard reconstructs byte-identical tables.
    """

    shard_id: int = 0
    rows_per_table: int = 200
    days: int = 3
    row_group_size: int = 100
    table_ids: list[str] | None = None
    """Subset of Table II query ids (``["Q2", "Q5"]``); None = all ten."""
    fault_profile: str = ""
    read_latency_seconds: float = 0.0
    model: str = "always"
    execution_mode: str = "batch"
    build_workers: int = 1
    server: dict = field(default_factory=dict)
    """Keyword arguments for :class:`~repro.server.config.ServerConfig`."""

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return cls(**data)


def build_shard_server(spec: ShardSpec):
    """Build (system, server) for a spec — the shard child's core, also
    used in-process by the differential tests' single-server twin."""
    from ..core import MaxsonConfig, MaxsonSystem, PredictorConfig
    from ..engine import Session
    from ..server import MaxsonServer, ServerConfig
    from ..storage import BlockFileSystem
    from ..workload import load_tables
    from ..workload.tables import TABLE_SPECS

    if spec.fault_profile:
        from ..faults import FaultPolicy, FaultyFileSystem, parse_fault_profile

        # Quiet policy while fixtures load; arm afterwards so raw data
        # on disk is intact (same protocol as single-process replay).
        session = Session(fs=FaultyFileSystem(policy=FaultPolicy()))
    else:
        session = Session(
            fs=BlockFileSystem(
                read_latency_seconds=spec.read_latency_seconds
            )
        )
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(
            predictor=PredictorConfig(model=spec.model),
            execution_mode=spec.execution_mode,
            build_workers=spec.build_workers,
        ),
    )
    specs = None
    if spec.table_ids is not None:
        wanted = set(spec.table_ids)
        specs = [s for s in TABLE_SPECS if s.query_id in wanted]
    load_tables(
        system.catalog,
        rows_per_table=spec.rows_per_table,
        days=spec.days,
        row_group_size=spec.row_group_size,
        specs=specs,
    )
    if spec.fault_profile:
        system.session.fs.policy = parse_fault_profile(spec.fault_profile)
    server = MaxsonServer(system, ServerConfig(**dict(spec.server)))
    return system, server


def spec_queries(spec: ShardSpec):
    """The representative queries a spec's warehouse answers.

    The router holds no warehouse of its own, so workload generation
    rebuilds the (deterministic) table factories into a throwaway
    catalog — same generator arguments as :func:`build_shard_server`,
    hence the same SQL text every shard compiled its tables for.
    """
    from ..engine import Session
    from ..workload import build_queries, load_tables
    from ..workload.tables import TABLE_SPECS

    specs = None
    if spec.table_ids is not None:
        wanted = set(spec.table_ids)
        specs = [s for s in TABLE_SPECS if s.query_id in wanted]
    factories = load_tables(
        Session().catalog,
        rows_per_table=spec.rows_per_table,
        days=spec.days,
        row_group_size=spec.row_group_size,
        specs=specs,
    )
    return build_queries(factories)


# ---------------------------------------------------------------------------
# metadata (the coordinator cache's loader)
# ---------------------------------------------------------------------------
def metadata_payload(system, kind: str, database: str, table: str) -> dict:
    """One shard-side metadata answer: schema / footers / stripes /
    registry, all JSON-safe."""
    catalog = system.catalog
    if kind == "schema":
        info = catalog.get_table(database, table)
        return {
            "columns": [
                [f.name, f.dtype.name] for f in info.schema.fields
            ],
            "location": info.location,
        }
    if kind in ("footers", "stripes"):
        from ..storage.orc import OrcFileReader

        files = []
        for path in catalog.table_files(database, table):
            reader = OrcFileReader(catalog.fs.read(path))
            stripes = [
                {
                    "offset": s.offset,
                    "length": s.length,
                    "rows": s.row_count,
                    "row_groups": len(s.row_groups),
                }
                for s in reader.stripes
            ]
            entry = {
                "path": path,
                "version": reader.version,
                "stripe_count": len(stripes),
                "row_count": sum(s["rows"] for s in stripes),
            }
            if kind == "stripes":
                entry["stripes"] = stripes
            files.append(entry)
        return {"files": files}
    if kind == "registry":
        entries = system.registry.entries()
        return {
            "generation": system.generation,
            "cached_paths": len(entries),
            "cache_tables": sorted({e.cache_table for e in entries}),
            "cache_bytes": system.registry.total_bytes(),
        }
    raise ValueError(f"unknown metadata kind {kind!r}")


# ---------------------------------------------------------------------------
# the child process
# ---------------------------------------------------------------------------
def _version_vector(system) -> dict:
    return {
        "catalog": system.catalog.version,
        "generation": system.generation,
    }


def shard_main(spec_dict: dict, host: str, port: int) -> None:
    """Child-process entrypoint: dial the router, serve until shutdown.

    Spawn-safe: reached by module path, rebuilds all state from the
    JSON spec, and touches nothing of the router's memory.
    """
    spec = ShardSpec.from_dict(spec_dict)
    sock = socket.create_connection((host, port))
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass
    system, server = build_shard_server(spec)
    write_lock = threading.Lock()

    def respond(request_id, payload: dict | None = None, error=None) -> None:
        response: dict = {"id": request_id, "v": _version_vector(system)}
        if error is not None:
            response["ok"] = False
            response["error"] = encode_error(error)
        else:
            response["ok"] = True
            if payload:
                response.update(payload)
        with write_lock:
            send_frame(sock, response)

    # Tell the router who connected (hello carries the shard id + pid so
    # the supervisor can map sockets to processes and reap SHM by pid).
    with write_lock:
        send_frame(
            sock,
            {
                "hello": spec.shard_id,
                "pid": os.getpid(),
                "v": _version_vector(system),
            },
        )

    def finish_execute(request_id, future) -> None:
        try:
            result = future.result()
        except BaseException as exc:  # typed envelope, never a hang
            respond(request_id, error=exc)
            return
        metrics = result.metrics
        try:
            respond(
                request_id,
                {
                    "rows": result.rows,
                    "metrics": {
                        "total_seconds": metrics.total_seconds,
                        "parse_documents": metrics.parse_documents,
                        "cache_hits": metrics.cache_hits,
                        "cache_misses": metrics.cache_misses,
                        "result_cache_hits": int(
                            metrics.extra.get("result_cache_hits", 0)
                        ),
                        "plan_cache_hits": int(
                            metrics.extra.get("plan_cache_hits", 0)
                        ),
                    },
                },
            )
        except (TypeError, ValueError) as exc:
            respond(request_id, error=exc)

    running = True
    while running:
        try:
            request = recv_frame(sock)
        except Exception:
            break  # router went away: exit quietly
        request_id = request.get("id")
        op = request.get("op")
        try:
            if op == "execute":
                future = server.submit(
                    request["sql"],
                    tenant=request.get("tenant"),
                    day=request.get("day"),
                    deadline_ms=request.get("deadline_ms"),
                )
                future.add_done_callback(
                    lambda f, rid=request_id: finish_execute(rid, f)
                )
                continue  # response sent by the callback
            if op == "ping":
                respond(request_id, {"pid": os.getpid()})
            elif op == "ingest":
                paths = tuple(
                    PathKey(*entry) for entry in request.get("paths", ())
                )
                server.ingest(int(request["day"]), paths)
                respond(request_id, {})
            elif op == "advance_to":
                events = server.scheduler.advance_to(
                    float(request["seconds"])
                )
                respond(request_id, {"events": events})
            elif op == "midnight":
                report = server.run_midnight_cycle(
                    day=request.get("day"),
                    history_days=int(request.get("history_days", 7)),
                )
                respond(
                    request_id,
                    {
                        "day": report.day,
                        "selected": len(report.selected),
                        "build_failed": report.build.failed,
                        "generation": system.generation,
                    },
                )
            elif op == "refresh":
                report = server.refresh_cache()
                respond(request_id, {"build_failed": report.failed})
            elif op == "status":
                respond(request_id, {"status": server.status().to_dict()})
            elif op == "metrics_text":
                respond(request_id, {"text": server.metrics_text()})
            elif op == "sql":
                result = system.session.sql(request["sql"])
                respond(request_id, {"rows": result.rows})
            elif op == "metadata":
                payload = metadata_payload(
                    system,
                    request["kind"],
                    request["database"],
                    request["table"],
                )
                respond(request_id, {"payload": payload})
            elif op == "crash":
                # Chaos hook: die like a SIGKILLed process — no drain,
                # no response, no flushed telemetry.
                os._exit(3)
            elif op == "shutdown":
                respond(request_id, {})
                running = False
            else:
                respond(
                    request_id, error=ValueError(f"unknown op {op!r}")
                )
        except Exception as exc:
            respond(request_id, error=exc)
    try:
        server.shutdown(wait=True, drain_timeout=1.0)
    finally:
        sock.close()
