"""Consistent hashing: the cluster's routing function.

The router places every shard on a hash ring ``replicas`` times (virtual
nodes) and routes a request key — canonically ``(tenant, database,
table)`` — to the first shard clockwise from the key's hash. The two
properties the cluster leans on:

* **restart stability** — a shard that crashes and respawns keeps its
  shard id, so the ring (a pure function of the id set) is unchanged and
  *zero* keys move; clients see only the in-flight failures of the
  crash window;
* **minimal resize movement** — growing ``N -> N+1`` shards moves only
  ``~1/(N+1)`` of the key space (the slice the new shard claims), never
  reshuffling keys between surviving shards.

Hashes are SHA-1 over stable strings, so placement is identical across
processes, platforms and Python hash-randomization seeds.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "route_key"]


def route_key(tenant: str, database: str, table: str) -> str:
    """The canonical routing key: one tenant's traffic to one table."""
    return f"{tenant}\x00{database}.{table}"


def _hash(value: str) -> int:
    return int.from_bytes(
        hashlib.sha1(value.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over shard ids with virtual nodes."""

    def __init__(self, nodes=(), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []  # sorted virtual-node hashes
        self._owner: dict[int, int] = {}  # hash -> shard id
        self._nodes: set[int] = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def _point(self, node: int, replica: int) -> int:
        return _hash(f"shard-{node}#{replica}")

    def add(self, node: int) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = self._point(node, replica)
            # SHA-1 collisions across distinct vnode strings are not a
            # practical concern; ties resolve to the smaller shard id so
            # placement stays deterministic either way.
            if point in self._owner:
                self._owner[point] = min(self._owner[point], node)
                continue
            bisect.insort(self._points, point)
            self._owner[point] = node

    def remove(self, node: int) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for replica in range(self.replicas):
            point = self._point(node, replica)
            if self._owner.get(point) == node:
                del self._owner[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    del self._points[index]

    @property
    def nodes(self) -> list[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def node_for(self, key: str) -> int:
        """The shard owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise RuntimeError("hash ring has no nodes")
        point = _hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owner[self._points[index]]

    def assignment(self, keys) -> dict[str, int]:
        """{key: shard} for a batch of keys (resize/stability tests)."""
        return {key: self.node_for(key) for key in keys}
